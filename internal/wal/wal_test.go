package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"instantdb/internal/storage"
	"instantdb/internal/value"
	"instantdb/internal/vclock"
)

func insertRec(tuple storage.TupleID, name string, deg value.Value) *Record {
	return &Record{
		Type:       RecInsert,
		Table:      1,
		Tuple:      tuple,
		InsertNano: vclock.Epoch.UnixNano(),
		States:     []uint8{0},
		StableRow:  []value.Value{value.Int(int64(tuple)), value.Text(name), value.Null()},
		DegVals:    []value.Value{deg},
	}
}

func TestRecordRoundtripAllTypes(t *testing.T) {
	codec := PlainCodec{}
	recs := []*Record{
		insertRec(7, "alice", value.Int(42)),
		{Type: RecDelete, Table: 3, Tuple: 9},
		{Type: RecUpdateStable, Table: 1, Tuple: 7, Col: 1, Val: value.Text("bob")},
		{Type: RecDegrade, Table: 1, Tuple: 7, InsertNano: 123456, DegPos: 0, NewState: 2, NewStored: value.Int(17)},
	}
	for _, r := range recs {
		enc, err := encodeRecord(nil, r, codec)
		if err != nil {
			t.Fatal(err)
		}
		got, rest, err := decodeRecord(enc, codec)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Fatalf("type %d: %d trailing bytes", r.Type, len(rest))
		}
		if got.Type != r.Type || got.Table != r.Table || got.Tuple != r.Tuple {
			t.Fatalf("header mismatch: %+v vs %+v", got, r)
		}
		switch r.Type {
		case RecInsert:
			if got.InsertNano != r.InsertNano || len(got.StableRow) != 3 ||
				!value.Equal(got.DegVals[0], r.DegVals[0]) || got.DegLost[0] {
				t.Fatalf("insert mismatch: %+v", got)
			}
		case RecUpdateStable:
			if got.Col != r.Col || !value.Equal(got.Val, r.Val) {
				t.Fatalf("update mismatch: %+v", got)
			}
		case RecDegrade:
			if got.DegPos != r.DegPos || got.NewState != r.NewState ||
				!value.Equal(got.NewStored, r.NewStored) || got.NewLost {
				t.Fatalf("degrade mismatch: %+v", got)
			}
		}
	}
}

func TestRecordDecodeErrors(t *testing.T) {
	codec := PlainCodec{}
	if _, _, err := decodeRecord(nil, codec); err == nil {
		t.Error("empty input should fail")
	}
	if _, _, err := decodeRecord(make([]byte, 13), codec); err == nil {
		t.Error("unknown type should fail")
	}
	enc, _ := encodeRecord(nil, insertRec(1, "x", value.Int(1)), codec)
	if _, _, err := decodeRecord(enc[:len(enc)-3], codec); err == nil {
		t.Error("truncated record should fail")
	}
}

func openTestLog(t *testing.T, opts Options) (*Log, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "wal")
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l, dir
}

func TestAppendReplay(t *testing.T) {
	l, _ := openTestLog(t, Options{Sync: true})
	defer l.Close()
	batch1 := []*Record{insertRec(1, "a", value.Int(10)), insertRec(2, "b", value.Int(20))}
	batch2 := []*Record{{Type: RecDelete, Table: 1, Tuple: 1}}
	if err := l.Append(batch1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(batch2); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(nil); err != nil {
		t.Fatal("empty batch must be a no-op")
	}
	var got []RecType
	if err := l.Replay(func(r *Record) error { got = append(got, r.Type); return nil }); err != nil {
		t.Fatal(err)
	}
	want := []RecType{RecInsert, RecInsert, RecDelete}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d type %d want %d", i, got[i], want[i])
		}
	}
}

func TestReplayAcrossReopen(t *testing.T) {
	l, dir := openTestLog(t, Options{Sync: true})
	if err := l.Append([]*Record{insertRec(1, "a", value.Int(1))}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.Append([]*Record{insertRec(2, "b", value.Int(2))}); err != nil {
		t.Fatal(err)
	}
	n := 0
	l2.Replay(func(*Record) error { n++; return nil })
	if n != 2 {
		t.Fatalf("replayed %d want 2", n)
	}
}

func TestRotationAndSegments(t *testing.T) {
	l, _ := openTestLog(t, Options{Sync: false, SegmentBytes: 256})
	defer l.Close()
	for i := 0; i < 20; i++ {
		if err := l.Append([]*Record{insertRec(storage.TupleID(i), "namename", value.Int(int64(i)))}); err != nil {
			t.Fatal(err)
		}
	}
	if l.SegmentCount() < 2 {
		t.Fatalf("expected rotation, have %d segments", l.SegmentCount())
	}
	n := 0
	l.Replay(func(*Record) error { n++; return nil })
	if n != 20 {
		t.Fatalf("replayed %d want 20", n)
	}
	if l.SizeBytes() <= 0 {
		t.Fatal("SizeBytes should be positive")
	}
}

func TestTornTailIgnoredAndTruncated(t *testing.T) {
	l, dir := openTestLog(t, Options{Sync: true})
	if err := l.Append([]*Record{insertRec(1, "a", value.Int(1))}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Corrupt the tail: append garbage simulating a torn batch.
	seg := filepath.Join(dir, "wal-00000001.log")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x49, 0x57, 0x41, 0x4C, 0xFF, 0xFF}) // magic-ish + garbage
	f.Close()
	l2, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	n := 0
	if err := l2.Replay(func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d want 1", n)
	}
	// New appends after the truncated tail are replayable.
	if err := l2.Append([]*Record{insertRec(2, "b", value.Int(2))}); err != nil {
		t.Fatal(err)
	}
	n = 0
	l2.Replay(func(*Record) error { n++; return nil })
	if n != 2 {
		t.Fatalf("after truncate+append replayed %d want 2", n)
	}
}

func TestResetScrubsSegments(t *testing.T) {
	l, dir := openTestLog(t, Options{Sync: true})
	defer l.Close()
	if err := l.Append([]*Record{insertRec(1, "scrub-sentinel-wal", value.Int(1))}); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	// No segment file may contain the sentinel.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(data, []byte("scrub-sentinel-wal")) {
			t.Fatalf("sentinel survives in %s", e.Name())
		}
	}
	n := 0
	l.Replay(func(*Record) error { n++; return nil })
	if n != 0 {
		t.Fatalf("replay after reset saw %d records", n)
	}
	// The log remains usable.
	if err := l.Append([]*Record{insertRec(2, "post-reset", value.Int(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyStoreRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys.db")
	ks, err := OpenKeyStore(path)
	if err != nil {
		t.Fatal(err)
	}
	id := keyID{table: 1, col: 0, state: 0, bucket: 42}
	k1, ok, err := ks.keyFor(id, true)
	if err != nil || !ok {
		t.Fatalf("create key: %v %v", ok, err)
	}
	k2, ok, _ := ks.keyFor(id, false)
	if !ok || k1 != k2 {
		t.Fatal("key lookup mismatch")
	}
	if ks.LiveKeys() != 1 {
		t.Fatalf("LiveKeys=%d", ks.LiveKeys())
	}
	ks.Close()
	// Keys survive reopen.
	ks2, err := OpenKeyStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ks2.Close()
	k3, ok, _ := ks2.keyFor(id, false)
	if !ok || k3 != k1 {
		t.Fatal("key lost across reopen")
	}
}

func TestKeyStoreShred(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys.db")
	ks, err := OpenKeyStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ks.Close()
	w := time.Hour
	// Bucket 10 covers [10h, 11h).
	id := keyID{table: 1, col: 0, state: 0, bucket: 10}
	key, _, err := ks.keyFor(id, true)
	if err != nil {
		t.Fatal(err)
	}
	// Cutoff before bucket end: nothing shredded.
	n, err := ks.Shred(1, 0, 0, time.Unix(0, 0).Add(10*time.Hour+30*time.Minute), w)
	if err != nil || n != 0 {
		t.Fatalf("early shred: n=%d err=%v", n, err)
	}
	// Cutoff at bucket end: shredded.
	n, err = ks.Shred(1, 0, 0, time.Unix(0, 0).Add(11*time.Hour), w)
	if err != nil || n != 1 {
		t.Fatalf("shred: n=%d err=%v", n, err)
	}
	if _, ok, _ := ks.keyFor(id, false); ok {
		t.Fatal("shredded key still live")
	}
	// The raw key bytes are zeroed on disk.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, key[:16]) {
		t.Fatal("key bytes survive on disk after shred")
	}
	// Shredding is idempotent.
	n, _ = ks.Shred(1, 0, 0, time.Unix(0, 0).Add(12*time.Hour), w)
	if n != 0 {
		t.Fatal("double shred counted keys")
	}
	// Other scopes untouched.
	other := keyID{table: 1, col: 1, state: 0, bucket: 10}
	ks.keyFor(other, true)
	n, _ = ks.Shred(1, 0, 0, time.Unix(0, 0).Add(24*time.Hour), w)
	if n != 0 {
		t.Fatal("shred crossed column scope")
	}
	if ks.LiveKeys() != 1 {
		t.Fatalf("LiveKeys=%d want 1", ks.LiveKeys())
	}
}

func TestShredCodecSealOpen(t *testing.T) {
	ks, err := OpenKeyStore(filepath.Join(t.TempDir(), "keys.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer ks.Close()
	c := NewShredCodec(ks, time.Hour)
	plain := []byte("the accurate location")
	sealed, err := c.Seal(1, 0, 0, vclock.Epoch.UnixNano(), 7, plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, plain) {
		t.Fatal("sealed payload contains plaintext")
	}
	got, ok, err := c.Open(1, 0, 0, vclock.Epoch.UnixNano(), 7, sealed)
	if err != nil || !ok || !bytes.Equal(got, plain) {
		t.Fatalf("open: %q %v %v", got, ok, err)
	}
	// After shredding the epoch key, the payload is irrecoverable.
	cutoff := vclock.Epoch.Add(2 * time.Hour)
	if n, err := ks.Shred(1, 0, 0, cutoff, time.Hour); err != nil || n != 1 {
		t.Fatalf("shred n=%d err=%v", n, err)
	}
	_, ok, err = c.Open(1, 0, 0, vclock.Epoch.UnixNano(), 7, sealed)
	if err != nil || ok {
		t.Fatalf("shredded payload opened: ok=%v err=%v", ok, err)
	}
	// Sealing new data under the dead epoch is refused.
	if _, err := c.Seal(1, 0, 0, vclock.Epoch.UnixNano(), 8, plain); err == nil {
		t.Fatal("seal under shredded key must fail")
	}
}

func TestShredReplayYieldsLostValues(t *testing.T) {
	tmp := t.TempDir()
	ks, err := OpenKeyStore(filepath.Join(tmp, "keys.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer ks.Close()
	codec := NewShredCodec(ks, time.Hour)
	l, err := Open(filepath.Join(tmp, "wal"), Options{Sync: true, Codec: codec})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]*Record{
		insertRec(1, "alice", value.Int(2471)),
		{Type: RecDegrade, Table: 1, Tuple: 1, InsertNano: vclock.Epoch.UnixNano(),
			DegPos: 0, NewState: 1, NewStored: value.Int(2400)},
	}); err != nil {
		t.Fatal(err)
	}
	// Shred the state-0 epoch: the insert's accurate value dies, the
	// degrade record (state 1) survives.
	if _, err := ks.Shred(1, 0, 0, vclock.Epoch.Add(2*time.Hour), time.Hour); err != nil {
		t.Fatal(err)
	}
	var ins, deg *Record
	err = l.Replay(func(r *Record) error {
		cp := *r
		switch r.Type {
		case RecInsert:
			ins = &cp
		case RecDegrade:
			deg = &cp
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ins == nil || deg == nil {
		t.Fatal("records missing")
	}
	if !ins.DegLost[0] || !ins.DegVals[0].IsNull() {
		t.Fatalf("accurate value should be lost: %+v", ins)
	}
	if deg.NewLost || deg.NewStored.Int() != 2400 {
		t.Fatalf("degraded value should survive: %+v", deg)
	}
	// Stable columns are untouched.
	if ins.StableRow[1].Text() != "alice" {
		t.Fatal("stable row corrupted")
	}
}

func TestVacuumNullsPayloadsAndScrubs(t *testing.T) {
	l, dir := openTestLog(t, Options{Sync: true})
	defer l.Close()
	secret := "vacuum-secret-location-xyzzy"
	if err := l.Append([]*Record{insertRec(1, "alice", value.Text(secret))}); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Vacuum(func(r *Record) {
		if r.Type == RecInsert {
			for i := range r.DegVals {
				r.DegVals[i] = value.Null()
				r.DegLost[i] = true
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Raw scan of every log file: secret gone.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		data, _ := os.ReadFile(filepath.Join(dir, e.Name()))
		if bytes.Contains(data, []byte(secret)) {
			t.Fatalf("secret survives vacuum in %s", e.Name())
		}
	}
	// Replay still yields the record, with the payload nulled; stable
	// parts intact.
	var ins *Record
	l.Replay(func(r *Record) error {
		if r.Type == RecInsert {
			cp := *r
			ins = &cp
		}
		return nil
	})
	if ins == nil || !ins.DegVals[0].IsNull() || ins.StableRow[1].Text() != "alice" {
		t.Fatalf("vacuumed replay wrong: %+v", ins)
	}
}

func TestVacuumSkipsActiveSegment(t *testing.T) {
	l, _ := openTestLog(t, Options{Sync: true})
	defer l.Close()
	if err := l.Append([]*Record{insertRec(1, "a", value.Int(1))}); err != nil {
		t.Fatal(err)
	}
	called := false
	if err := l.Vacuum(func(*Record) { called = true }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("vacuum touched the active segment")
	}
}

func TestInterruptedVacuumRecovery(t *testing.T) {
	l, dir := openTestLog(t, Options{Sync: true})
	if err := l.Append([]*Record{insertRec(1, "a", value.Int(1))}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Simulate a crash after the tmp copy was written and the original
	// zeroed: move the segment content to .tmp and zero the original.
	seg := filepath.Join(dir, "wal-00000001.log")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg+tmpSuffix, data, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, make([]byte, len(data)), 0o600); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	n := 0
	l2.Replay(func(*Record) error { n++; return nil })
	if n != 1 {
		t.Fatalf("recovered replay saw %d records want 1", n)
	}
}

// Property: insert records round-trip through both codecs for arbitrary
// payloads.
func TestQuickRecordRoundtrip(t *testing.T) {
	ks, err := OpenKeyStore(filepath.Join(t.TempDir(), "keys.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer ks.Close()
	codecs := []Codec{PlainCodec{}, NewShredCodec(ks, time.Hour)}
	if err := quick.Check(func(tuple uint64, name string, deg int64, nano int64) bool {
		for _, codec := range codecs {
			r := insertRec(storage.TupleID(tuple), name, value.Int(deg))
			r.InsertNano = nano % (1 << 40) // keep buckets sane
			enc, err := encodeRecord(nil, r, codec)
			if err != nil {
				return false
			}
			got, rest, err := decodeRecord(enc, codec)
			if err != nil || len(rest) != 0 {
				return false
			}
			if got.Tuple != r.Tuple || !value.Equal(got.DegVals[0], value.Int(deg)) {
				return false
			}
			if got.StableRow[1].Text() != name {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
