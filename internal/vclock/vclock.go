// Package vclock provides the notion of time used by every InstantDB
// component. Degradation deadlines span minutes to months (the paper's
// Figure 2 uses 0 min / 1 hour / 1 day / 1 month), so tests and benchmarks
// cannot wait on the wall clock. All engine code reads time through the
// Clock interface; production uses Wall, tests and the experiment harness
// use a Simulated clock advanced explicitly.
package vclock

import (
	"sync"
	"time"
)

// Clock is the minimal time source the engine depends on.
type Clock interface {
	// Now returns the current instant of this clock.
	Now() time.Time
}

// Wall is the real-time clock.
type Wall struct{}

// Now implements Clock using the operating system clock.
func (Wall) Now() time.Time { return time.Now() }

// Simulated is a manually advanced clock. The zero value is not usable;
// construct with NewSimulated. It is safe for concurrent use.
type Simulated struct {
	mu      sync.Mutex
	now     time.Time
	waiters []waiter
}

type waiter struct {
	at time.Time
	ch chan time.Time
}

// NewSimulated returns a simulated clock starting at the given instant.
func NewSimulated(start time.Time) *Simulated {
	return &Simulated{now: start}
}

// Now returns the simulated instant.
func (s *Simulated) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Advance moves the clock forward by d and releases any waiter whose
// deadline has been reached. Advancing by a negative duration panics:
// time never goes backwards in the engine.
func (s *Simulated) Advance(d time.Duration) time.Time {
	if d < 0 {
		panic("vclock: negative advance")
	}
	s.mu.Lock()
	s.now = s.now.Add(d)
	now := s.now
	var fire []waiter
	rest := s.waiters[:0]
	for _, w := range s.waiters {
		if !w.at.After(now) {
			fire = append(fire, w)
		} else {
			rest = append(rest, w)
		}
	}
	s.waiters = rest
	s.mu.Unlock()
	for _, w := range fire {
		w.ch <- now
		close(w.ch)
	}
	return now
}

// AdvanceTo moves the clock to instant t. It is a no-op if t is not after
// the current instant.
func (s *Simulated) AdvanceTo(t time.Time) time.Time {
	s.mu.Lock()
	d := t.Sub(s.now)
	s.mu.Unlock()
	if d <= 0 {
		return s.Now()
	}
	return s.Advance(d)
}

// After returns a channel that receives the clock value once the simulated
// time reaches now+d. If d <= 0 the channel is ready immediately.
func (s *Simulated) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	s.mu.Lock()
	at := s.now.Add(d)
	if d <= 0 {
		now := s.now
		s.mu.Unlock()
		ch <- now
		close(ch)
		return ch
	}
	s.waiters = append(s.waiters, waiter{at: at, ch: ch})
	s.mu.Unlock()
	return ch
}

// Epoch is a convenient fixed origin for simulations and tests: midnight
// UTC, 2008-04-07 — the week ICDE 2008 took place.
var Epoch = time.Date(2008, time.April, 7, 0, 0, 0, 0, time.UTC)
