package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestWallNow(t *testing.T) {
	var c Clock = Wall{}
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Wall.Now()=%v not in [%v,%v]", got, before, after)
	}
}

func TestSimulatedNow(t *testing.T) {
	s := NewSimulated(Epoch)
	if !s.Now().Equal(Epoch) {
		t.Fatalf("Now()=%v want %v", s.Now(), Epoch)
	}
}

func TestSimulatedAdvance(t *testing.T) {
	s := NewSimulated(Epoch)
	got := s.Advance(time.Hour)
	want := Epoch.Add(time.Hour)
	if !got.Equal(want) {
		t.Fatalf("Advance=%v want %v", got, want)
	}
	if !s.Now().Equal(want) {
		t.Fatalf("Now=%v want %v", s.Now(), want)
	}
}

func TestSimulatedAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	NewSimulated(Epoch).Advance(-time.Second)
}

func TestSimulatedAdvanceTo(t *testing.T) {
	s := NewSimulated(Epoch)
	target := Epoch.Add(24 * time.Hour)
	s.AdvanceTo(target)
	if !s.Now().Equal(target) {
		t.Fatalf("Now=%v want %v", s.Now(), target)
	}
	// Moving to the past is a no-op.
	s.AdvanceTo(Epoch)
	if !s.Now().Equal(target) {
		t.Fatalf("AdvanceTo past moved the clock: %v", s.Now())
	}
}

func TestSimulatedAfterImmediate(t *testing.T) {
	s := NewSimulated(Epoch)
	select {
	case got := <-s.After(0):
		if !got.Equal(Epoch) {
			t.Fatalf("After(0)=%v want %v", got, Epoch)
		}
	default:
		t.Fatal("After(0) not immediately ready")
	}
}

func TestSimulatedAfterFiresOnAdvance(t *testing.T) {
	s := NewSimulated(Epoch)
	ch := s.After(time.Minute)
	select {
	case <-ch:
		t.Fatal("After fired before advance")
	default:
	}
	s.Advance(30 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired too early")
	default:
	}
	s.Advance(30 * time.Second)
	select {
	case got := <-ch:
		want := Epoch.Add(time.Minute)
		if !got.Equal(want) {
			t.Fatalf("fired at %v want %v", got, want)
		}
	case <-time.After(time.Second):
		t.Fatal("After never fired")
	}
}

func TestSimulatedConcurrentAdvance(t *testing.T) {
	s := NewSimulated(Epoch)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Advance(time.Millisecond)
				_ = s.Now()
			}
		}()
	}
	wg.Wait()
	want := Epoch.Add(1600 * time.Millisecond)
	if !s.Now().Equal(want) {
		t.Fatalf("Now=%v want %v", s.Now(), want)
	}
}

func TestSimulatedMultipleWaitersOrdered(t *testing.T) {
	s := NewSimulated(Epoch)
	a := s.After(time.Minute)
	b := s.After(2 * time.Minute)
	s.Advance(90 * time.Second)
	select {
	case <-a:
	default:
		t.Fatal("first waiter not released")
	}
	select {
	case <-b:
		t.Fatal("second waiter released early")
	default:
	}
	s.Advance(time.Minute)
	select {
	case <-b:
	default:
		t.Fatal("second waiter not released")
	}
}
