package gentree

import (
	"fmt"
	"sort"
	"strings"

	"instantdb/internal/value"
)

// NodeID identifies a node of a Tree domain. IDs are dense, start at 1,
// and are stable for the lifetime of the tree. 0 is never a valid node.
type NodeID uint32

// InvalidNode is the zero NodeID.
const InvalidNode NodeID = 0

// storedNodeBase displaces node ids in their stored (persisted)
// representation. Dense small integers would make the encoded stored
// form byte-indistinguishable from other small integers in raw pages and
// log records (tuple ids, counters), defeating forensic audits of
// scrubbed values; the base gives every tree stored form a distinctive
// byte prefix.
const storedNodeBase int64 = 0x1DB0_0000

// NodeToStored boxes a node id into its stored representation.
func NodeToStored(n NodeID) value.Value { return value.Int(storedNodeBase + int64(n)) }

// StoredToNode unboxes a stored representation. ok is false when v is
// not a plausible stored node id.
func StoredToNode(v value.Value) (NodeID, bool) {
	if v.Kind() != value.KindInt {
		return InvalidNode, false
	}
	raw := v.Int() - storedNodeBase
	if raw <= 0 || raw > int64(^uint32(0)) {
		return InvalidNode, false
	}
	return NodeID(raw), true
}

type treeNode struct {
	id       NodeID
	value    string
	level    int
	parent   NodeID
	children []NodeID
}

// Tree is an explicit generalization tree (the paper's Figure 1). Every
// leaf sits at level 0 and every root-bound path has exactly Levels()
// nodes, so the accuracy level of a node equals its height. Node identity
// is positional: two distinct cities named "Paris" under different regions
// are distinct nodes rendering to the same value.
//
// The stored representation of a tree-domain attribute is the NodeID of
// its current node, boxed as value.Int. Degrading walks the parent chain.
type Tree struct {
	name       string
	levelNames []string
	nodes      []treeNode // index = NodeID (0 unused)
	roots      []NodeID
	byValue    []map[string][]NodeID // per level: rendered value -> nodes
}

// TreeBuilder assembles a Tree from leaf-to-root paths.
type TreeBuilder struct {
	t   *Tree
	err error
}

// NewTreeBuilder starts a tree domain with the given catalog name and
// level names ordered from most accurate to most general (e.g., "address",
// "city", "region", "country").
func NewTreeBuilder(name string, levelNames ...string) *TreeBuilder {
	b := &TreeBuilder{t: &Tree{
		name:       name,
		levelNames: append([]string(nil), levelNames...),
		nodes:      make([]treeNode, 1), // id 0 unused
	}}
	if len(levelNames) < 2 {
		b.err = fmt.Errorf("gentree: tree %q needs at least 2 levels", name)
		return b
	}
	b.t.byValue = make([]map[string][]NodeID, len(levelNames))
	for i := range b.t.byValue {
		b.t.byValue[i] = make(map[string][]NodeID)
	}
	return b
}

// AddPath registers one full path from leaf to root; values[0] is the
// level-0 (accurate) value and values[len-1] the most general. Interior
// nodes shared with previously added paths (same value under the same
// ancestors) are reused, so calling AddPath("21 rue X", "Paris", "IdF",
// "France") and AddPath("5 av Y", "Paris", "IdF", "France") yields one
// "Paris" node with two children.
func (b *TreeBuilder) AddPath(values ...string) *TreeBuilder {
	if b.err != nil {
		return b
	}
	t := b.t
	if len(values) != len(t.levelNames) {
		b.err = fmt.Errorf("gentree: tree %q: path has %d values, want %d",
			t.name, len(values), len(t.levelNames))
		return b
	}
	// Walk root-down, reusing existing nodes.
	parent := InvalidNode
	top := len(values) - 1
	for lvl := top; lvl >= 0; lvl-- {
		v := values[lvl]
		var found NodeID
		if parent == InvalidNode {
			for _, r := range t.roots {
				if t.nodes[r].value == v {
					found = r
					break
				}
			}
		} else {
			for _, c := range t.nodes[parent].children {
				if t.nodes[c].value == v {
					found = c
					break
				}
			}
		}
		if found == InvalidNode {
			id := NodeID(len(t.nodes))
			t.nodes = append(t.nodes, treeNode{id: id, value: v, level: lvl, parent: parent})
			if parent == InvalidNode {
				t.roots = append(t.roots, id)
			} else {
				t.nodes[parent].children = append(t.nodes[parent].children, id)
			}
			t.byValue[lvl][v] = append(t.byValue[lvl][v], id)
			found = id
		} else if lvl == 0 {
			b.err = fmt.Errorf("gentree: tree %q: duplicate leaf path ending at %q", t.name, v)
			return b
		}
		parent = found
	}
	return b
}

// Build finalizes the tree. It fails if no paths were added or any AddPath
// reported an error.
func (b *TreeBuilder) Build() (*Tree, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.t.nodes) == 1 {
		return nil, fmt.Errorf("gentree: tree %q has no paths", b.t.name)
	}
	return b.t, nil
}

// MustBuild is Build for static fixtures; it panics on error.
func (b *TreeBuilder) MustBuild() *Tree {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements Domain.
func (t *Tree) Name() string { return t.name }

// Levels implements Domain.
func (t *Tree) Levels() int { return len(t.levelNames) }

// LevelName implements Domain.
func (t *Tree) LevelName(level int) string {
	if level < 0 || level >= len(t.levelNames) {
		return fmt.Sprintf("level%d", level)
	}
	return t.levelNames[level]
}

// LevelByName implements Domain.
func (t *Tree) LevelByName(name string) (int, error) {
	for i, n := range t.levelNames {
		if strings.EqualFold(n, name) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: level %q of domain %s", ErrBadLevel, name, t.name)
}

// InsertKind implements Domain: tree domains ingest TEXT.
func (t *Tree) InsertKind() value.Kind { return value.KindText }

// ResolveInsert implements Domain: the accurate value must match exactly
// one leaf.
func (t *Tree) ResolveInsert(v value.Value) (value.Value, error) {
	if v.Kind() != value.KindText {
		return value.Null(), fmt.Errorf("gentree: tree %s stores TEXT, got %s", t.name, v.Kind())
	}
	ids := t.byValue[0][v.Text()]
	switch len(ids) {
	case 0:
		return value.Null(), fmt.Errorf("%w: leaf %q of %s", ErrUnknownValue, v.Text(), t.name)
	case 1:
		return NodeToStored(ids[0]), nil
	default:
		return value.Null(), fmt.Errorf("gentree: ambiguous leaf %q in %s", v.Text(), t.name)
	}
}

// Degrade implements Domain by walking the parent chain.
func (t *Tree) Degrade(stored value.Value, from, to int) (value.Value, error) {
	if err := checkSpan(t, from, to); err != nil {
		return value.Null(), err
	}
	n, err := t.nodeAt(stored, from)
	if err != nil {
		return value.Null(), err
	}
	for lvl := from; lvl < to; lvl++ {
		n = t.nodes[n].parent
		if n == InvalidNode {
			return value.Null(), fmt.Errorf("gentree: %s: broken parent chain at level %d", t.name, lvl)
		}
	}
	return NodeToStored(n), nil
}

// Render implements Domain.
func (t *Tree) Render(stored value.Value, level int) (value.Value, error) {
	n, err := t.nodeAt(stored, level)
	if err != nil {
		return value.Null(), err
	}
	return value.Text(t.nodes[n].value), nil
}

// Locate implements Domain.
func (t *Tree) Locate(v value.Value, level int) ([]value.Value, error) {
	if err := checkLevel(t, level); err != nil {
		return nil, err
	}
	if v.Kind() != value.KindText {
		return nil, fmt.Errorf("gentree: tree %s locates TEXT, got %s", t.name, v.Kind())
	}
	ids := t.byValue[level][v.Text()]
	if len(ids) == 0 {
		return nil, fmt.Errorf("%w: %q at level %s of %s", ErrUnknownValue, v.Text(), t.LevelName(level), t.name)
	}
	out := make([]value.Value, len(ids))
	for i, id := range ids {
		out[i] = NodeToStored(id)
	}
	return out, nil
}

// OrderKey implements Domain; tree nodes carry no order.
func (t *Tree) OrderKey(value.Value, int) (value.Value, error) {
	return value.Null(), ErrNotOrdered
}

func (t *Tree) nodeAt(stored value.Value, level int) (NodeID, error) {
	if err := checkLevel(t, level); err != nil {
		return InvalidNode, err
	}
	id, ok := StoredToNode(stored)
	if !ok {
		return InvalidNode, fmt.Errorf("gentree: %s stored form is not a node id (%s)", t.name, stored)
	}
	if int(id) >= len(t.nodes) {
		return InvalidNode, fmt.Errorf("%w: node %d of %s", ErrUnknownValue, id, t.name)
	}
	if t.nodes[id].level != level {
		return InvalidNode, fmt.Errorf("gentree: %s: node %d is at level %d, not %d",
			t.name, id, t.nodes[id].level, level)
	}
	return id, nil
}

// --- navigation API used by the GT-index and by tooling ---

// Root returns the roots of the tree (one per top-level value).
func (t *Tree) Roots() []NodeID { return append([]NodeID(nil), t.roots...) }

// Parent returns the parent of n, or InvalidNode for roots.
func (t *Tree) Parent(n NodeID) NodeID {
	if n == InvalidNode || int(n) >= len(t.nodes) {
		return InvalidNode
	}
	return t.nodes[n].parent
}

// Children returns the children of n in insertion order.
func (t *Tree) Children(n NodeID) []NodeID {
	if n == InvalidNode || int(n) >= len(t.nodes) {
		return nil
	}
	return append([]NodeID(nil), t.nodes[n].children...)
}

// NodeLevel returns the accuracy level of n, or -1 if n is invalid.
func (t *Tree) NodeLevel(n NodeID) int {
	if n == InvalidNode || int(n) >= len(t.nodes) {
		return -1
	}
	return t.nodes[n].level
}

// NodeValue returns the rendered value of n.
func (t *Tree) NodeValue(n NodeID) string {
	if n == InvalidNode || int(n) >= len(t.nodes) {
		return ""
	}
	return t.nodes[n].value
}

// NodeCount returns the number of nodes in the tree.
func (t *Tree) NodeCount() int { return len(t.nodes) - 1 }

// NodesAtLevel returns all node ids at the given level, sorted.
func (t *Tree) NodesAtLevel(level int) []NodeID {
	var out []NodeID
	for _, n := range t.nodes[1:] {
		if n.level == level {
			out = append(out, n.id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ancestor returns the ancestor of n at the given (coarser) level.
func (t *Tree) Ancestor(n NodeID, level int) (NodeID, error) {
	cur := n
	for cur != InvalidNode && t.nodes[cur].level < level {
		cur = t.nodes[cur].parent
	}
	if cur == InvalidNode || t.nodes[cur].level != level {
		return InvalidNode, fmt.Errorf("gentree: no ancestor of node %d at level %d", n, level)
	}
	return cur, nil
}

// Path returns the rendered values from n up to its root.
func (t *Tree) Path(n NodeID) []string {
	var out []string
	for cur := n; cur != InvalidNode; cur = t.nodes[cur].parent {
		out = append(out, t.nodes[cur].value)
	}
	return out
}

// Dump renders the tree as an indented outline, level names first —
// the textual form of the paper's Figure 1. Intended for tooling output.
func (t *Tree) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "domain %s levels=%s\n", t.name, strings.Join(t.levelNames, ","))
	var walk func(n NodeID, depth int)
	walk = func(n NodeID, depth int) {
		fmt.Fprintf(&sb, "%s%s\n", strings.Repeat("  ", depth), t.nodes[n].value)
		for _, c := range t.nodes[n].children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.roots {
		walk(r, 0)
	}
	return sb.String()
}

var _ Domain = (*Tree)(nil)
