package gentree

import (
	"strings"
	"testing"
	"time"

	"instantdb/internal/value"
)

func TestMustBuildersPanic(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("MustBuild", func() { NewTreeBuilder("x", "a").MustBuild() })
	expectPanic("MustIntRange", func() { MustIntRange("x", -1) })
	expectPanic("MustTimeTrunc", func() { MustTimeTrunc("x", UnitExact) })
}

func TestLevelNameOutOfRange(t *testing.T) {
	tr := Figure1Locations()
	if got := tr.LevelName(99); got != "level99" {
		t.Errorf("tree LevelName(99)=%q", got)
	}
	d := Figure2Salary()
	if got := d.LevelName(-1); got != "level-1" {
		t.Errorf("range LevelName(-1)=%q", got)
	}
	tt := StandardTimestamp()
	if got := tt.LevelName(42); got != "level42" {
		t.Errorf("time LevelName(42)=%q", got)
	}
}

func TestInsertKinds(t *testing.T) {
	if Figure1Locations().InsertKind() != value.KindText {
		t.Error("tree kind")
	}
	if Figure2Salary().InsertKind() != value.KindInt {
		t.Error("range kind")
	}
	if StandardTimestamp().InsertKind() != value.KindTime {
		t.Error("time kind")
	}
}

func TestStoredToNodeRejects(t *testing.T) {
	if _, ok := StoredToNode(value.Text("x")); ok {
		t.Error("text accepted as node")
	}
	if _, ok := StoredToNode(value.Int(5)); ok {
		t.Error("small int accepted as node (below stored base)")
	}
	if _, ok := StoredToNode(value.Int(0x1DB00000)); ok {
		t.Error("base itself maps to invalid node 0")
	}
	n, ok := StoredToNode(NodeToStored(7))
	if !ok || n != 7 {
		t.Errorf("roundtrip=(%v,%v)", n, ok)
	}
}

func TestIntRangeBucketSpan(t *testing.T) {
	d := Figure2Salary()
	stored, _ := d.Degrade(value.Int(2471), 0, 2)
	lo, hi, err := d.BucketSpan(stored, 2)
	if err != nil || lo.Int() != 2000 || hi.Int() != 3000 {
		t.Fatalf("span=(%v,%v,%v)", lo, hi, err)
	}
	// Level 0: unit bucket.
	lo, hi, err = d.BucketSpan(value.Int(5), 0)
	if err != nil || lo.Int() != 5 || hi.Int() != 6 {
		t.Fatalf("level0 span=(%v,%v,%v)", lo, hi, err)
	}
	// Suppressed level has no span.
	if _, _, err := d.BucketSpan(value.Int(0), 3); err != ErrNotOrdered {
		t.Fatalf("suppressed span err=%v", err)
	}
	if _, _, err := d.BucketSpan(value.Text("x"), 1); err == nil {
		t.Fatal("text stored form accepted")
	}
	if _, _, err := d.BucketSpan(value.Int(0), 99); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestTimeTruncBucketSpan(t *testing.T) {
	d := MustTimeTrunc("t", UnitExact, UnitSecond, UnitMinute, UnitHour, UnitDay, UnitWeek, UnitMonth, UnitYear)
	base := time.Date(2008, 4, 1, 0, 0, 0, 0, time.UTC)
	cases := []struct {
		level int
		want  time.Time
	}{
		{1, base.Add(time.Second)},
		{2, base.Add(time.Minute)},
		{3, base.Add(time.Hour)},
		{4, base.AddDate(0, 0, 1)},
		// base (Tue 2008-04-01) truncates to Monday 2008-03-31; the
		// week bucket ends the following Monday.
		{5, time.Date(2008, 4, 7, 0, 0, 0, 0, time.UTC)},
		{6, time.Date(2008, 5, 1, 0, 0, 0, 0, time.UTC)},
		// year truncation lands on Jan 1.
		{7, time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC)},
	}
	for _, c := range cases {
		stored, err := d.Degrade(value.Time(base), 0, c.level)
		if err != nil {
			t.Fatal(err)
		}
		_, hi, err := d.BucketSpan(stored, c.level)
		if err != nil {
			t.Fatalf("level %d: %v", c.level, err)
		}
		if !hi.Time().Equal(c.want) {
			t.Errorf("level %d span end %v want %v", c.level, hi.Time(), c.want)
		}
	}
	// Exact level: nanosecond bucket.
	_, hi, err := d.BucketSpan(value.Time(base), 0)
	if err != nil || !hi.Time().Equal(base.Add(time.Nanosecond)) {
		t.Fatalf("exact span=(%v,%v)", hi, err)
	}
	if _, _, err := d.BucketSpan(value.Int(1), 0); err == nil {
		t.Fatal("non-time stored form accepted")
	}
}

func TestTimeUnitStrings(t *testing.T) {
	names := []string{"exact", "second", "minute", "hour", "day", "week", "month", "year"}
	for u := UnitExact; u <= UnitYear; u++ {
		if u.String() != names[u] {
			t.Errorf("unit %d = %q want %q", u, u.String(), names[u])
		}
	}
	if !strings.HasPrefix(TimeUnit(99).String(), "unit") {
		t.Error("unknown unit string")
	}
}

func TestScalarErrorPaths(t *testing.T) {
	d := Figure2Salary()
	if _, err := d.Degrade(value.Text("x"), 0, 1); err == nil {
		t.Error("range degrade of text accepted")
	}
	if _, err := d.Render(value.Text("x"), 1); err == nil {
		t.Error("range render of text accepted")
	}
	if _, err := d.OrderKey(value.Text("x"), 1); err == nil {
		t.Error("range order key of text accepted")
	}
	if _, err := d.ResolveInsert(value.Text("x")); err == nil {
		t.Error("range insert of text accepted")
	}
	if _, err := d.Locate(value.Int(5), 99); err == nil {
		t.Error("bad level accepted")
	}
	tt := StandardTimestamp()
	if _, err := tt.Render(value.Int(5), 1); err == nil {
		t.Error("time render of int accepted")
	}
	if _, err := tt.OrderKey(value.Int(5), 1); err == nil {
		t.Error("time order key of int accepted")
	}
	tr := Figure1Locations()
	if _, err := tr.Degrade(value.Int(1), 3, 0); err == nil {
		t.Error("tree refinement accepted")
	}
	if _, err := tr.Locate(value.Int(1), 0); err == nil {
		t.Error("tree locate of int accepted")
	}
	if _, err := tr.Ancestor(InvalidNode, 2); err == nil {
		t.Error("ancestor of invalid node accepted")
	}
}
