// Package gentree implements generalization hierarchies — the paper's
// Generalization Trees (Figure 1). A Domain describes, for one attribute
// domain, the value an attribute takes at every accuracy level of its
// lifetime: level 0 is the accurate (leaf) form, higher levels are
// progressively coarser, and the last level is the most general form still
// stored. Complete removal is not a Domain level; it is the terminal state
// of a Life Cycle Policy (package lcp).
//
// Three families of domains cover the paper's examples:
//
//   - Tree: an explicit generalization tree (location: address → city →
//     region → country, Figure 1).
//   - IntRange: numeric bucketing (salary: exact → range 100 → range 1000),
//     matching the paper's RANGE1000 purpose syntax and '2000-3000' literals.
//   - TimeTrunc: timestamp truncation (exact → minute → hour → day → month).
//
// Degradable attributes are persisted in a *stored representation* chosen
// by the domain (a node id for trees, a bucket floor for ranges, a
// truncated timestamp for times). The Domain translates between the stored
// form, the user-visible rendered form, and index-friendly order keys.
package gentree

import (
	"errors"
	"fmt"

	"instantdb/internal/value"
)

// Common domain errors.
var (
	// ErrUnknownValue is returned when a value cannot be resolved within
	// the domain (e.g., an address absent from the tree).
	ErrUnknownValue = errors.New("gentree: value not in domain")
	// ErrBadLevel is returned for accuracy levels outside [0, Levels()).
	ErrBadLevel = errors.New("gentree: accuracy level out of range")
	// ErrNotOrdered is returned by OrderKey for domains whose generalized
	// values carry no meaningful order (tree domains).
	ErrNotOrdered = errors.New("gentree: domain has no order at this level")
)

// Domain is a generalization hierarchy for one attribute domain.
//
// All methods are safe for concurrent use after construction; domains are
// immutable once built.
type Domain interface {
	// Name returns the domain's catalog name.
	Name() string

	// Levels returns the number of accuracy levels. Level 0 is the most
	// accurate; Levels()-1 is the most general form still stored.
	Levels() int

	// LevelName returns the human-readable name of a level ("city",
	// "range1000", "hour"...). Used by the purpose declaration syntax.
	LevelName(level int) string

	// LevelByName resolves a level name (case-insensitive) to its index.
	LevelByName(name string) (int, error)

	// InsertKind returns the value kind accepted by ResolveInsert (the
	// declared SQL type of columns bound to this domain).
	InsertKind() value.Kind

	// ResolveInsert converts a user-supplied accurate value into the
	// stored representation at level 0.
	ResolveInsert(v value.Value) (value.Value, error)

	// Degrade converts a stored representation at level from into the
	// stored representation at level to. It requires 0 <= from <= to <
	// Levels(): degradation is irreversible, never a refinement.
	Degrade(stored value.Value, from, to int) (value.Value, error)

	// Render converts a stored representation at the given level into the
	// user-visible value at that level.
	Render(stored value.Value, level int) (value.Value, error)

	// Locate maps a user-visible value at the given level to the stored
	// representations that render to it. Tree domains may return several
	// (homonym nodes); scalar domains return exactly one. It returns
	// ErrUnknownValue when nothing matches.
	Locate(v value.Value, level int) ([]value.Value, error)

	// OrderKey converts a stored representation at the given level into a
	// totally ordered Value suitable for range predicates and B+tree
	// keys, or ErrNotOrdered if the level has no meaningful order.
	OrderKey(stored value.Value, level int) (value.Value, error)
}

func checkLevel(d Domain, level int) error {
	if level < 0 || level >= d.Levels() {
		return fmt.Errorf("%w: %d not in [0,%d) of domain %s",
			ErrBadLevel, level, d.Levels(), d.Name())
	}
	return nil
}

func checkSpan(d Domain, from, to int) error {
	if err := checkLevel(d, from); err != nil {
		return err
	}
	if err := checkLevel(d, to); err != nil {
		return err
	}
	if from > to {
		return fmt.Errorf("%w: refinement %d->%d forbidden in domain %s",
			ErrBadLevel, from, to, d.Name())
	}
	return nil
}
