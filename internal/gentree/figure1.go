package gentree

// This file reproduces the paper's Figure 1: the generalization tree of
// the location domain (address → city → region → country). The node set
// is a small but realistic sample; workload generators in
// internal/workload synthesize larger trees with the same shape.

// Figure1Locations builds the location generalization tree of the paper's
// Figure 1 with levels address, city, region, country.
func Figure1Locations() *Tree {
	b := NewTreeBuilder("location", "address", "city", "region", "country")
	for _, p := range figure1Paths {
		b.AddPath(p[0], p[1], p[2], p[3])
	}
	return b.MustBuild()
}

var figure1Paths = [][4]string{
	// France — the authors' home institutions.
	{"Domaine de Voluceau, Rocquencourt", "Le Chesnay", "Ile-de-France", "France"},
	{"45 avenue des Etats-Unis", "Versailles", "Ile-de-France", "France"},
	{"2 place de la Defense", "Paris", "Ile-de-France", "France"},
	{"10 rue de Rivoli", "Paris", "Ile-de-France", "France"},
	{"1 quai du Port", "Marseille", "Provence", "France"},
	{"20 cours Mirabeau", "Aix-en-Provence", "Provence", "France"},
	{"5 place Bellecour", "Lyon", "Rhone-Alpes", "France"},
	// The Netherlands — CTIT, University of Twente.
	{"Drienerlolaan 5", "Enschede", "Overijssel", "Netherlands"},
	{"Hengelosestraat 99", "Enschede", "Overijssel", "Netherlands"},
	{"Dam 1", "Amsterdam", "Noord-Holland", "Netherlands"},
	{"Museumplein 6", "Amsterdam", "Noord-Holland", "Netherlands"},
	{"Coolsingel 40", "Rotterdam", "Zuid-Holland", "Netherlands"},
	// Mexico — ICDE 2008 venue.
	{"Blvd Kukulcan km 9", "Cancun", "Quintana Roo", "Mexico"},
	{"5a Avenida Norte 100", "Playa del Carmen", "Quintana Roo", "Mexico"},
	{"Paseo de la Reforma 325", "Mexico City", "CDMX", "Mexico"},
}

// Figure2Salary builds the salary range domain used by the paper's
// example purpose (SET ACCURACY LEVEL RANGE1000 FOR P.SALARY): exact →
// range 100 → range 1000 → suppressed.
func Figure2Salary() *IntRange {
	return MustIntRange("salary", 100, 1000, 0)
}

// StandardTimestamp builds the time-truncation domain used by the
// location-tracker workloads: exact → hour → day → month.
func StandardTimestamp() *TimeTrunc {
	return MustTimeTrunc("timestamp", UnitExact, UnitHour, UnitDay, UnitMonth)
}
