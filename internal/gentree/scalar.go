package gentree

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"instantdb/internal/value"
)

// IntRange is a numeric generalization hierarchy: level 0 is the exact
// integer, level i>0 buckets the value into ranges of Widths[i-1]. A final
// width of 0 means full suppression (rendered "*"). Widths must be strictly
// increasing and each must divide the next so buckets nest — the defining
// property of a generalization tree over a numeric domain.
//
// Stored representation: value.Int — the exact value at level 0, the
// bucket floor at level i>0, and 0 at a suppression level. Rendered form
// at level i>0 is the paper's literal syntax "lo-hi" (hi exclusive), e.g.
// salary 2471 at RANGE1000 renders "2000-3000".
type IntRange struct {
	name       string
	levelNames []string
	widths     []int64 // widths[i] applies to level i+1; 0 = suppression
}

// NewIntRange builds a numeric range domain. widths apply to levels 1..n;
// a trailing 0 adds a suppression level.
func NewIntRange(name string, widths ...int64) (*IntRange, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("gentree: range domain %q needs at least one width", name)
	}
	names := []string{"exact"}
	var prev int64
	for i, w := range widths {
		switch {
		case w == 0:
			if i != len(widths)-1 {
				return nil, fmt.Errorf("gentree: range domain %q: suppression (width 0) must be last", name)
			}
			names = append(names, "suppressed")
		case w < 0:
			return nil, fmt.Errorf("gentree: range domain %q: negative width %d", name, w)
		case prev > 0 && (w <= prev || w%prev != 0):
			return nil, fmt.Errorf("gentree: range domain %q: width %d must be an increasing multiple of %d",
				name, w, prev)
		default:
			names = append(names, fmt.Sprintf("range%d", w))
		}
		if w != 0 {
			prev = w
		}
	}
	return &IntRange{name: name, levelNames: names, widths: append([]int64(nil), widths...)}, nil
}

// MustIntRange is NewIntRange for static fixtures; it panics on error.
func MustIntRange(name string, widths ...int64) *IntRange {
	d, err := NewIntRange(name, widths...)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements Domain.
func (d *IntRange) Name() string { return d.name }

// Levels implements Domain.
func (d *IntRange) Levels() int { return len(d.widths) + 1 }

// LevelName implements Domain.
func (d *IntRange) LevelName(level int) string {
	if level < 0 || level >= len(d.levelNames) {
		return fmt.Sprintf("level%d", level)
	}
	return d.levelNames[level]
}

// LevelByName implements Domain.
func (d *IntRange) LevelByName(name string) (int, error) {
	for i, n := range d.levelNames {
		if strings.EqualFold(n, name) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: level %q of domain %s", ErrBadLevel, name, d.name)
}

// InsertKind implements Domain: range domains ingest INT.
func (d *IntRange) InsertKind() value.Kind { return value.KindInt }

// ResolveInsert implements Domain.
func (d *IntRange) ResolveInsert(v value.Value) (value.Value, error) {
	if v.Kind() != value.KindInt {
		return value.Null(), fmt.Errorf("gentree: range %s stores INT, got %s", d.name, v.Kind())
	}
	return v, nil
}

// widthAt returns the bucket width of a level (1 at level 0 meaning exact,
// 0 meaning suppression).
func (d *IntRange) widthAt(level int) int64 {
	if level == 0 {
		return 1
	}
	return d.widths[level-1]
}

// Degrade implements Domain.
func (d *IntRange) Degrade(stored value.Value, from, to int) (value.Value, error) {
	if err := checkSpan(d, from, to); err != nil {
		return value.Null(), err
	}
	if stored.Kind() != value.KindInt {
		return value.Null(), fmt.Errorf("gentree: range %s stored form is INT, got %s", d.name, stored.Kind())
	}
	w := d.widthAt(to)
	if w == 0 {
		return value.Int(0), nil // suppressed
	}
	return value.Int(floorDiv(stored.Int(), w) * w), nil
}

// Render implements Domain.
func (d *IntRange) Render(stored value.Value, level int) (value.Value, error) {
	if err := checkLevel(d, level); err != nil {
		return value.Null(), err
	}
	if stored.Kind() != value.KindInt {
		return value.Null(), fmt.Errorf("gentree: range %s stored form is INT, got %s", d.name, stored.Kind())
	}
	w := d.widthAt(level)
	switch {
	case level == 0:
		return stored, nil
	case w == 0:
		return value.Text("*"), nil
	default:
		lo := stored.Int()
		return value.Text(fmt.Sprintf("%d-%d", lo, lo+w)), nil
	}
}

// Locate implements Domain. At level 0 it accepts an INT; at bucket levels
// it accepts either the "lo-hi" literal or an INT inside the bucket; at a
// suppression level it accepts "*".
func (d *IntRange) Locate(v value.Value, level int) ([]value.Value, error) {
	if err := checkLevel(d, level); err != nil {
		return nil, err
	}
	w := d.widthAt(level)
	switch {
	case level == 0:
		if v.Kind() != value.KindInt {
			return nil, fmt.Errorf("gentree: range %s level 0 locates INT, got %s", d.name, v.Kind())
		}
		return []value.Value{v}, nil
	case w == 0:
		if v.Kind() == value.KindText && v.Text() == "*" {
			return []value.Value{value.Int(0)}, nil
		}
		return nil, fmt.Errorf("%w: suppression level of %s only holds %q", ErrUnknownValue, d.name, "*")
	default:
		switch v.Kind() {
		case value.KindInt:
			return []value.Value{value.Int(floorDiv(v.Int(), w) * w)}, nil
		case value.KindText:
			lo, hi, err := ParseRangeLiteral(v.Text())
			if err != nil {
				return nil, err
			}
			if hi-lo != w || floorDiv(lo, w)*w != lo {
				return nil, fmt.Errorf("%w: %q is not a %s bucket of %s",
					ErrUnknownValue, v.Text(), d.LevelName(level), d.name)
			}
			return []value.Value{value.Int(lo)}, nil
		default:
			return nil, fmt.Errorf("gentree: range %s locates INT or \"lo-hi\", got %s", d.name, v.Kind())
		}
	}
}

// BucketSpan returns the half-open order-key interval [lo, hi) covered
// by a stored representation at the given level — the set of finer
// values that generalize to it. Used by index planning for equality
// predicates at degraded accuracy.
func (d *IntRange) BucketSpan(stored value.Value, level int) (lo, hi value.Value, err error) {
	if err := checkLevel(d, level); err != nil {
		return value.Null(), value.Null(), err
	}
	if stored.Kind() != value.KindInt {
		return value.Null(), value.Null(), fmt.Errorf("gentree: range %s stored form is INT, got %s", d.name, stored.Kind())
	}
	w := d.widthAt(level)
	if w == 0 {
		return value.Null(), value.Null(), ErrNotOrdered
	}
	return stored, value.Int(stored.Int() + w), nil
}

// OrderKey implements Domain: the bucket floor orders buckets.
func (d *IntRange) OrderKey(stored value.Value, level int) (value.Value, error) {
	if err := checkLevel(d, level); err != nil {
		return value.Null(), err
	}
	if d.widthAt(level) == 0 {
		return value.Null(), ErrNotOrdered
	}
	if stored.Kind() != value.KindInt {
		return value.Null(), fmt.Errorf("gentree: range %s stored form is INT, got %s", d.name, stored.Kind())
	}
	return stored, nil
}

// ParseRangeLiteral parses the paper's "lo-hi" range literal. The
// separator is the last '-' so negative bounds parse ("-100--50").
func ParseRangeLiteral(s string) (lo, hi int64, err error) {
	i := strings.LastIndex(s, "-")
	if i <= 0 {
		return 0, 0, fmt.Errorf("gentree: bad range literal %q", s)
	}
	lo, err = strconv.ParseInt(s[:i], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("gentree: bad range literal %q: %v", s, err)
	}
	hi, err = strconv.ParseInt(s[i+1:], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("gentree: bad range literal %q: %v", s, err)
	}
	if hi <= lo {
		return 0, 0, fmt.Errorf("gentree: empty range literal %q", s)
	}
	return lo, hi, nil
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

var _ Domain = (*IntRange)(nil)

// TimeUnit is a truncation granularity of a TimeTrunc domain.
type TimeUnit uint8

// Truncation granularities, fine to coarse.
const (
	UnitExact TimeUnit = iota
	UnitSecond
	UnitMinute
	UnitHour
	UnitDay
	UnitWeek
	UnitMonth
	UnitYear
)

// String returns the lowercase unit name.
func (u TimeUnit) String() string {
	switch u {
	case UnitExact:
		return "exact"
	case UnitSecond:
		return "second"
	case UnitMinute:
		return "minute"
	case UnitHour:
		return "hour"
	case UnitDay:
		return "day"
	case UnitWeek:
		return "week"
	case UnitMonth:
		return "month"
	case UnitYear:
		return "year"
	default:
		return fmt.Sprintf("unit%d", uint8(u))
	}
}

// TimeTrunc generalizes timestamps by truncation: exact → second → minute
// → hour → day → month → … in UTC. Stored representation: value.Time
// truncated to the level's unit.
type TimeTrunc struct {
	name  string
	units []TimeUnit // units[0] must be UnitExact
}

// NewTimeTrunc builds a time-truncation domain from a strictly coarsening
// unit sequence starting at UnitExact.
func NewTimeTrunc(name string, units ...TimeUnit) (*TimeTrunc, error) {
	if len(units) < 2 {
		return nil, fmt.Errorf("gentree: time domain %q needs at least 2 levels", name)
	}
	if units[0] != UnitExact {
		return nil, fmt.Errorf("gentree: time domain %q must start at exact", name)
	}
	for i := 1; i < len(units); i++ {
		if units[i] <= units[i-1] {
			return nil, fmt.Errorf("gentree: time domain %q: units must strictly coarsen", name)
		}
	}
	return &TimeTrunc{name: name, units: append([]TimeUnit(nil), units...)}, nil
}

// MustTimeTrunc is NewTimeTrunc for static fixtures; it panics on error.
func MustTimeTrunc(name string, units ...TimeUnit) *TimeTrunc {
	d, err := NewTimeTrunc(name, units...)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements Domain.
func (d *TimeTrunc) Name() string { return d.name }

// Levels implements Domain.
func (d *TimeTrunc) Levels() int { return len(d.units) }

// LevelName implements Domain.
func (d *TimeTrunc) LevelName(level int) string {
	if level < 0 || level >= len(d.units) {
		return fmt.Sprintf("level%d", level)
	}
	return d.units[level].String()
}

// LevelByName implements Domain.
func (d *TimeTrunc) LevelByName(name string) (int, error) {
	for i, u := range d.units {
		if strings.EqualFold(u.String(), name) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: level %q of domain %s", ErrBadLevel, name, d.name)
}

// Truncate truncates t to the unit, in UTC.
func Truncate(t time.Time, u TimeUnit) time.Time {
	t = t.UTC()
	switch u {
	case UnitExact:
		return t
	case UnitSecond:
		return t.Truncate(time.Second)
	case UnitMinute:
		return t.Truncate(time.Minute)
	case UnitHour:
		return t.Truncate(time.Hour)
	case UnitDay:
		return time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
	case UnitWeek:
		d := time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
		// ISO weeks start Monday.
		off := (int(d.Weekday()) + 6) % 7
		return d.AddDate(0, 0, -off)
	case UnitMonth:
		return time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
	case UnitYear:
		return time.Date(t.Year(), 1, 1, 0, 0, 0, 0, time.UTC)
	default:
		return t
	}
}

// InsertKind implements Domain: time domains ingest TIME.
func (d *TimeTrunc) InsertKind() value.Kind { return value.KindTime }

// ResolveInsert implements Domain.
func (d *TimeTrunc) ResolveInsert(v value.Value) (value.Value, error) {
	if v.Kind() != value.KindTime {
		return value.Null(), fmt.Errorf("gentree: time %s stores TIME, got %s", d.name, v.Kind())
	}
	return v, nil
}

// Degrade implements Domain.
func (d *TimeTrunc) Degrade(stored value.Value, from, to int) (value.Value, error) {
	if err := checkSpan(d, from, to); err != nil {
		return value.Null(), err
	}
	if stored.Kind() != value.KindTime {
		return value.Null(), fmt.Errorf("gentree: time %s stored form is TIME, got %s", d.name, stored.Kind())
	}
	return value.Time(Truncate(stored.Time(), d.units[to])), nil
}

// Render implements Domain: the stored form is already user-visible.
func (d *TimeTrunc) Render(stored value.Value, level int) (value.Value, error) {
	if err := checkLevel(d, level); err != nil {
		return value.Null(), err
	}
	if stored.Kind() != value.KindTime {
		return value.Null(), fmt.Errorf("gentree: time %s stored form is TIME, got %s", d.name, stored.Kind())
	}
	return stored, nil
}

// Locate implements Domain: a timestamp locates its truncation.
func (d *TimeTrunc) Locate(v value.Value, level int) ([]value.Value, error) {
	if err := checkLevel(d, level); err != nil {
		return nil, err
	}
	if v.Kind() != value.KindTime {
		return nil, fmt.Errorf("gentree: time %s locates TIME, got %s", d.name, v.Kind())
	}
	return []value.Value{value.Time(Truncate(v.Time(), d.units[level]))}, nil
}

// BucketSpan returns the half-open time interval [lo, hi) covered by a
// truncated timestamp at the given level.
func (d *TimeTrunc) BucketSpan(stored value.Value, level int) (lo, hi value.Value, err error) {
	if err := checkLevel(d, level); err != nil {
		return value.Null(), value.Null(), err
	}
	if stored.Kind() != value.KindTime {
		return value.Null(), value.Null(), fmt.Errorf("gentree: time %s stored form is TIME, got %s", d.name, stored.Kind())
	}
	t := stored.Time()
	var end time.Time
	switch d.units[level] {
	case UnitExact:
		end = t.Add(time.Nanosecond)
	case UnitSecond:
		end = t.Add(time.Second)
	case UnitMinute:
		end = t.Add(time.Minute)
	case UnitHour:
		end = t.Add(time.Hour)
	case UnitDay:
		end = t.AddDate(0, 0, 1)
	case UnitWeek:
		end = t.AddDate(0, 0, 7)
	case UnitMonth:
		end = t.AddDate(0, 1, 0)
	case UnitYear:
		end = t.AddDate(1, 0, 0)
	default:
		return value.Null(), value.Null(), fmt.Errorf("gentree: unknown unit")
	}
	return stored, value.Time(end), nil
}

// OrderKey implements Domain: truncated timestamps order naturally.
func (d *TimeTrunc) OrderKey(stored value.Value, level int) (value.Value, error) {
	if err := checkLevel(d, level); err != nil {
		return value.Null(), err
	}
	if stored.Kind() != value.KindTime {
		return value.Null(), fmt.Errorf("gentree: time %s stored form is TIME, got %s", d.name, stored.Kind())
	}
	return stored, nil
}

var _ Domain = (*TimeTrunc)(nil)
