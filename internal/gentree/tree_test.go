package gentree

import (
	"strings"
	"testing"
	"testing/quick"

	"instantdb/internal/value"
)

func mustTree(t *testing.T) *Tree {
	t.Helper()
	return Figure1Locations()
}

func TestTreeBuilderValidation(t *testing.T) {
	if _, err := NewTreeBuilder("x", "only").Build(); err == nil {
		t.Error("single-level tree should fail")
	}
	if _, err := NewTreeBuilder("x", "a", "b").Build(); err == nil {
		t.Error("empty tree should fail")
	}
	if _, err := NewTreeBuilder("x", "a", "b").AddPath("leaf").Build(); err == nil {
		t.Error("short path should fail")
	}
	if _, err := NewTreeBuilder("x", "a", "b").
		AddPath("l", "r").AddPath("l", "r").Build(); err == nil {
		t.Error("duplicate leaf path should fail")
	}
}

func TestTreeLevels(t *testing.T) {
	tr := mustTree(t)
	if tr.Levels() != 4 {
		t.Fatalf("Levels()=%d want 4", tr.Levels())
	}
	for i, want := range []string{"address", "city", "region", "country"} {
		if got := tr.LevelName(i); got != want {
			t.Errorf("LevelName(%d)=%q want %q", i, got, want)
		}
		lvl, err := tr.LevelByName(strings.ToUpper(want))
		if err != nil || lvl != i {
			t.Errorf("LevelByName(%q)=(%d,%v) want %d", want, lvl, err, i)
		}
	}
	if _, err := tr.LevelByName("continent"); err == nil {
		t.Error("unknown level name should fail")
	}
}

func TestTreeSharedInteriorNodes(t *testing.T) {
	tr := mustTree(t)
	// Two Enschede addresses must resolve to the same city node.
	a, err := tr.ResolveInsert(value.Text("Drienerlolaan 5"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.ResolveInsert(value.Text("Hengelosestraat 99"))
	if err != nil {
		t.Fatal(err)
	}
	ca, err := tr.Degrade(a, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := tr.Degrade(b, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(ca, cb) {
		t.Fatalf("Enschede city nodes differ: %v vs %v", ca, cb)
	}
}

func TestTreeDegradeRenderFigure1(t *testing.T) {
	tr := mustTree(t)
	stored, err := tr.ResolveInsert(value.Text("45 avenue des Etats-Unis"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"45 avenue des Etats-Unis", "Versailles", "Ile-de-France", "France"}
	for lvl := 0; lvl < tr.Levels(); lvl++ {
		d, err := tr.Degrade(stored, 0, lvl)
		if err != nil {
			t.Fatalf("Degrade to %d: %v", lvl, err)
		}
		r, err := tr.Render(d, lvl)
		if err != nil {
			t.Fatalf("Render at %d: %v", lvl, err)
		}
		if r.Text() != want[lvl] {
			t.Errorf("level %d: %q want %q", lvl, r.Text(), want[lvl])
		}
	}
}

func TestTreeDegradeRejectsRefinement(t *testing.T) {
	tr := mustTree(t)
	stored, _ := tr.ResolveInsert(value.Text("Dam 1"))
	city, _ := tr.Degrade(stored, 0, 1)
	if _, err := tr.Degrade(city, 1, 0); err == nil {
		t.Fatal("refinement must be rejected: degradation is irreversible")
	}
}

func TestTreeDegradeLevelMismatch(t *testing.T) {
	tr := mustTree(t)
	stored, _ := tr.ResolveInsert(value.Text("Dam 1"))
	// Claiming a leaf node is at level 2 must fail.
	if _, err := tr.Degrade(stored, 2, 3); err == nil {
		t.Fatal("level mismatch must be detected")
	}
}

func TestTreeResolveInsertErrors(t *testing.T) {
	tr := mustTree(t)
	if _, err := tr.ResolveInsert(value.Text("1600 Pennsylvania Ave")); err == nil {
		t.Error("unknown address should fail")
	}
	if _, err := tr.ResolveInsert(value.Int(5)); err == nil {
		t.Error("non-text insert should fail")
	}
}

func TestTreeLocate(t *testing.T) {
	tr := mustTree(t)
	got, err := tr.Locate(value.Text("France"), 3)
	if err != nil || len(got) != 1 {
		t.Fatalf("Locate France: %v %v", got, err)
	}
	if _, err := tr.Locate(value.Text("France"), 1); err == nil {
		t.Error("France is not a city")
	}
	if _, err := tr.Locate(value.Text("Atlantis"), 3); err == nil {
		t.Error("unknown country should fail")
	}
	// Paris appears once as a city (both addresses share the node).
	cities, err := tr.Locate(value.Text("Paris"), 1)
	if err != nil || len(cities) != 1 {
		t.Fatalf("Locate Paris city: %v %v", cities, err)
	}
}

func TestTreeHomonymNodes(t *testing.T) {
	b := NewTreeBuilder("loc", "addr", "city", "country")
	b.AddPath("a1", "Paris", "France")
	b.AddPath("a2", "Paris", "USA")
	tr := b.MustBuild()
	got, err := tr.Locate(value.Text("Paris"), 1)
	if err != nil || len(got) != 2 {
		t.Fatalf("homonym Locate: %v %v, want 2 nodes", got, err)
	}
}

func TestTreeOrderKeyUnordered(t *testing.T) {
	tr := mustTree(t)
	if _, err := tr.OrderKey(value.Int(1), 0); err != ErrNotOrdered {
		t.Fatalf("OrderKey err=%v want ErrNotOrdered", err)
	}
}

func TestTreeNavigation(t *testing.T) {
	tr := mustTree(t)
	stored, _ := tr.ResolveInsert(value.Text("10 rue de Rivoli"))
	leaf, ok := StoredToNode(stored)
	if !ok {
		t.Fatal("stored form did not unbox")
	}
	if tr.NodeLevel(leaf) != 0 {
		t.Fatalf("leaf level %d", tr.NodeLevel(leaf))
	}
	country, err := tr.Ancestor(leaf, 3)
	if err != nil || tr.NodeValue(country) != "France" {
		t.Fatalf("Ancestor: %v %v", tr.NodeValue(country), err)
	}
	if p := tr.Path(leaf); len(p) != 4 || p[3] != "France" {
		t.Fatalf("Path=%v", p)
	}
	if tr.Parent(country) != InvalidNode {
		t.Fatal("country parent should be invalid (root)")
	}
	kids := tr.Children(country)
	if len(kids) == 0 {
		t.Fatal("France should have region children")
	}
	// Children and Parent are mutually consistent.
	for _, k := range kids {
		if tr.Parent(k) != country {
			t.Fatalf("child %d parent mismatch", k)
		}
	}
	if n := len(tr.Roots()); n != 3 {
		t.Fatalf("roots=%d want 3 (France, Netherlands, Mexico)", n)
	}
}

// Property: for every leaf, degrading stepwise equals degrading directly,
// and the rendered path equals Path() reversed — the Figure 1 invariant
// that a node's degraded forms are exactly its ancestor chain.
func TestTreePropertyAncestorChain(t *testing.T) {
	tr := mustTree(t)
	for _, leaf := range tr.NodesAtLevel(0) {
		stored := NodeToStored(leaf)
		step := stored
		for lvl := 1; lvl < tr.Levels(); lvl++ {
			var err error
			step, err = tr.Degrade(step, lvl-1, lvl)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := tr.Degrade(stored, 0, lvl)
			if err != nil {
				t.Fatal(err)
			}
			if !value.Equal(step, direct) {
				t.Fatalf("leaf %d: stepwise != direct at level %d", leaf, lvl)
			}
			anc, err := tr.Ancestor(leaf, lvl)
			directNode, ok := StoredToNode(direct)
			if err != nil || !ok || anc != directNode {
				t.Fatalf("leaf %d: ancestor mismatch at level %d", leaf, lvl)
			}
		}
	}
}

func TestTreeDump(t *testing.T) {
	out := mustTree(t).Dump()
	for _, want := range []string{"domain location", "France", "  Ile-de-France", "    Paris"} {
		if !strings.Contains(out, want) {
			t.Errorf("Dump missing %q", want)
		}
	}
}

// Property: NodesAtLevel partitions the node set.
func TestTreeNodePartition(t *testing.T) {
	tr := mustTree(t)
	total := 0
	for lvl := 0; lvl < tr.Levels(); lvl++ {
		total += len(tr.NodesAtLevel(lvl))
	}
	if total != tr.NodeCount() {
		t.Fatalf("levels hold %d nodes, tree has %d", total, tr.NodeCount())
	}
}

// Property (quick): random walks down from any root always end at level 0
// and Ancestor inverts the walk.
func TestQuickTreeWalk(t *testing.T) {
	tr := mustTree(t)
	roots := tr.Roots()
	if err := quick.Check(func(seed uint32) bool {
		n := roots[int(seed)%len(roots)]
		for {
			kids := tr.Children(n)
			if len(kids) == 0 {
				break
			}
			n = kids[int(seed>>3)%len(kids)]
		}
		if tr.NodeLevel(n) != 0 {
			return false
		}
		anc, err := tr.Ancestor(n, tr.Levels()-1)
		if err != nil {
			return false
		}
		for _, r := range roots {
			if r == anc {
				return true
			}
		}
		return false
	}, nil); err != nil {
		t.Fatal(err)
	}
}
