package gentree

import (
	"testing"
	"testing/quick"
	"time"

	"instantdb/internal/value"
)

func TestIntRangeValidation(t *testing.T) {
	if _, err := NewIntRange("s"); err == nil {
		t.Error("no widths should fail")
	}
	if _, err := NewIntRange("s", -5); err == nil {
		t.Error("negative width should fail")
	}
	if _, err := NewIntRange("s", 100, 250); err == nil {
		t.Error("non-multiple widths should fail")
	}
	if _, err := NewIntRange("s", 100, 0, 1000); err == nil {
		t.Error("suppression must be last")
	}
	if _, err := NewIntRange("s", 100, 1000, 0); err != nil {
		t.Errorf("valid domain failed: %v", err)
	}
}

func TestIntRangeLevelNames(t *testing.T) {
	d := Figure2Salary()
	want := []string{"exact", "range100", "range1000", "suppressed"}
	if d.Levels() != len(want) {
		t.Fatalf("Levels=%d want %d", d.Levels(), len(want))
	}
	for i, w := range want {
		if got := d.LevelName(i); got != w {
			t.Errorf("LevelName(%d)=%q want %q", i, got, w)
		}
		lvl, err := d.LevelByName(w)
		if err != nil || lvl != i {
			t.Errorf("LevelByName(%q)=(%d,%v)", w, lvl, err)
		}
	}
	// The paper's purpose syntax: RANGE1000.
	lvl, err := d.LevelByName("RANGE1000")
	if err != nil || lvl != 2 {
		t.Fatalf("LevelByName(RANGE1000)=(%d,%v)", lvl, err)
	}
}

func TestIntRangePaperExample(t *testing.T) {
	// Paper: SALARY = '2000-3000' under RANGE1000.
	d := Figure2Salary()
	stored, err := d.ResolveInsert(value.Int(2471))
	if err != nil {
		t.Fatal(err)
	}
	deg, err := d.Degrade(stored, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Render(deg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Text() != "2000-3000" {
		t.Fatalf("rendered %q want %q", r.Text(), "2000-3000")
	}
	// Locate accepts the same literal back.
	back, err := d.Locate(value.Text("2000-3000"), 2)
	if err != nil || len(back) != 1 || back[0].Int() != 2000 {
		t.Fatalf("Locate('2000-3000'): %v %v", back, err)
	}
}

func TestIntRangeNegativeValues(t *testing.T) {
	d := MustIntRange("delta", 10)
	deg, err := d.Degrade(value.Int(-3), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if deg.Int() != -10 {
		t.Fatalf("floor of -3 by 10 = %d want -10", deg.Int())
	}
	r, _ := d.Render(deg, 1)
	if r.Text() != "-10-0" {
		t.Fatalf("render %q want -10-0", r.Text())
	}
	lo, hi, err := ParseRangeLiteral("-10-0")
	if err != nil || lo != -10 || hi != 0 {
		t.Fatalf("ParseRangeLiteral: %d %d %v", lo, hi, err)
	}
}

func TestIntRangeSuppression(t *testing.T) {
	d := Figure2Salary()
	deg, err := d.Degrade(value.Int(2471), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := d.Render(deg, 3)
	if r.Text() != "*" {
		t.Fatalf("suppressed renders %q want *", r.Text())
	}
	if _, err := d.OrderKey(deg, 3); err != ErrNotOrdered {
		t.Fatalf("suppressed OrderKey err=%v", err)
	}
	got, err := d.Locate(value.Text("*"), 3)
	if err != nil || len(got) != 1 {
		t.Fatalf("Locate(*): %v %v", got, err)
	}
}

func TestIntRangeLocateErrors(t *testing.T) {
	d := Figure2Salary()
	if _, err := d.Locate(value.Text("2000-2500"), 2); err == nil {
		t.Error("misaligned bucket literal should fail")
	}
	if _, err := d.Locate(value.Text("banana"), 2); err == nil {
		t.Error("garbage literal should fail")
	}
	if _, err := d.Locate(value.Bool(true), 0); err == nil {
		t.Error("bool at level 0 should fail")
	}
	// An INT locates its enclosing bucket.
	got, err := d.Locate(value.Int(2471), 2)
	if err != nil || got[0].Int() != 2000 {
		t.Fatalf("Locate(2471)@2: %v %v", got, err)
	}
}

func TestParseRangeLiteralErrors(t *testing.T) {
	for _, s := range []string{"", "100", "-100", "300-200", "a-b", "100-"} {
		if _, _, err := ParseRangeLiteral(s); err == nil {
			t.Errorf("ParseRangeLiteral(%q) should fail", s)
		}
	}
}

// Property: buckets nest — degrading to a coarser level directly equals
// degrading via any intermediate level (the GT tree property for ranges).
func TestQuickIntRangeNesting(t *testing.T) {
	d := MustIntRange("q", 10, 100, 1000)
	if err := quick.Check(func(v int64) bool {
		for mid := 1; mid < 3; mid++ {
			a, err := d.Degrade(value.Int(v), 0, 3)
			if err != nil {
				return false
			}
			m, err := d.Degrade(value.Int(v), 0, mid)
			if err != nil {
				return false
			}
			b, err := d.Degrade(m, mid, 3)
			if err != nil {
				return false
			}
			if !value.Equal(a, b) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a value's bucket contains it.
func TestQuickIntRangeContains(t *testing.T) {
	d := MustIntRange("q", 7) // non-power-of-ten width
	if err := quick.Check(func(v int64) bool {
		// Avoid overflow at the extreme of the domain.
		if v > 1<<60 || v < -(1<<60) {
			return true
		}
		deg, err := d.Degrade(value.Int(v), 0, 1)
		if err != nil {
			return false
		}
		lo := deg.Int()
		return lo <= v && v < lo+7
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeTruncValidation(t *testing.T) {
	if _, err := NewTimeTrunc("t", UnitExact); err == nil {
		t.Error("single level should fail")
	}
	if _, err := NewTimeTrunc("t", UnitHour, UnitDay); err == nil {
		t.Error("must start at exact")
	}
	if _, err := NewTimeTrunc("t", UnitExact, UnitDay, UnitHour); err == nil {
		t.Error("units must coarsen")
	}
}

func TestTimeTruncDegrade(t *testing.T) {
	d := StandardTimestamp() // exact, hour, day, month
	ts := time.Date(2008, 4, 7, 14, 35, 22, 123456789, time.UTC)
	stored, err := d.ResolveInsert(value.Time(ts))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		level int
		want  time.Time
	}{
		{0, ts},
		{1, time.Date(2008, 4, 7, 14, 0, 0, 0, time.UTC)},
		{2, time.Date(2008, 4, 7, 0, 0, 0, 0, time.UTC)},
		{3, time.Date(2008, 4, 1, 0, 0, 0, 0, time.UTC)},
	}
	for _, c := range cases {
		got, err := d.Degrade(stored, 0, c.level)
		if err != nil {
			t.Fatalf("level %d: %v", c.level, err)
		}
		if !got.Time().Equal(c.want) {
			t.Errorf("level %d: %v want %v", c.level, got.Time(), c.want)
		}
	}
}

func TestTruncateWeek(t *testing.T) {
	// 2008-04-09 was a Wednesday; the ISO week starts Monday 2008-04-07.
	ts := time.Date(2008, 4, 9, 10, 0, 0, 0, time.UTC)
	got := Truncate(ts, UnitWeek)
	want := time.Date(2008, 4, 7, 0, 0, 0, 0, time.UTC)
	if !got.Equal(want) {
		t.Fatalf("week truncation %v want %v", got, want)
	}
	// A Monday truncates to itself.
	if got2 := Truncate(want, UnitWeek); !got2.Equal(want) {
		t.Fatalf("monday truncation %v want %v", got2, want)
	}
}

func TestTruncateYearAndSecond(t *testing.T) {
	ts := time.Date(2008, 4, 9, 10, 30, 45, 999, time.UTC)
	if got := Truncate(ts, UnitYear); !got.Equal(time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC)) {
		t.Fatalf("year truncation %v", got)
	}
	if got := Truncate(ts, UnitSecond); got.Nanosecond() != 0 {
		t.Fatalf("second truncation kept nanos: %v", got)
	}
}

// Property: time truncation is idempotent and monotone (never moves
// forward), and nested units compose.
func TestQuickTimeTruncProperties(t *testing.T) {
	d := MustTimeTrunc("q", UnitExact, UnitMinute, UnitHour, UnitDay, UnitMonth, UnitYear)
	if err := quick.Check(func(sec int64, nsec int64) bool {
		sec = sec % (1 << 33) // keep within sane year range
		if sec < 0 {
			sec = -sec
		}
		ts := time.Unix(sec, nsec%1e9).UTC()
		stored := value.Time(ts)
		prev := ts
		for lvl := 1; lvl < d.Levels(); lvl++ {
			got, err := d.Degrade(stored, 0, lvl)
			if err != nil {
				return false
			}
			g := got.Time()
			if g.After(prev) {
				return false // coarser level moved forward
			}
			again, err := d.Degrade(got, lvl, lvl)
			if err != nil || !value.Equal(again, got) {
				return false // idempotence
			}
			// Stepwise composition equals direct truncation.
			if lvl >= 2 {
				mid, err := d.Degrade(stored, 0, lvl-1)
				if err != nil {
					return false
				}
				via, err := d.Degrade(mid, lvl-1, lvl)
				if err != nil || !value.Equal(via, got) {
					return false
				}
			}
			prev = g
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeTruncLevelNames(t *testing.T) {
	d := StandardTimestamp()
	lvl, err := d.LevelByName("DAY")
	if err != nil || lvl != 2 {
		t.Fatalf("LevelByName(DAY)=(%d,%v)", lvl, err)
	}
	if d.LevelName(1) != "hour" {
		t.Fatalf("LevelName(1)=%q", d.LevelName(1))
	}
}

func TestTimeTruncKindErrors(t *testing.T) {
	d := StandardTimestamp()
	if _, err := d.ResolveInsert(value.Int(5)); err == nil {
		t.Error("non-time insert should fail")
	}
	if _, err := d.Degrade(value.Int(5), 0, 1); err == nil {
		t.Error("non-time degrade should fail")
	}
	if _, err := d.Locate(value.Text("x"), 1); err == nil {
		t.Error("non-time locate should fail")
	}
}
