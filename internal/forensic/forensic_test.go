package forensic

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"instantdb/internal/storage"
	"instantdb/internal/value"
)

func TestScanStoreFindsAndMisses(t *testing.T) {
	s := storage.NewMemStore()
	id, _ := s.Allocate()
	page := make([]byte, storage.PageSize)
	copy(page[100:], "the-secret-address")
	if err := s.WritePage(id, page); err != nil {
		t.Fatal(err)
	}
	rep, err := ScanStore(s, []Needle{
		NeedleForText("addr", "the-secret-address"),
		NeedleForText("ghost", "never-written"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || len(rep.Findings) != 1 {
		t.Fatalf("findings=%v", rep.Findings)
	}
	f := rep.Findings[0]
	if f.Label != "addr" || f.Offset != 100 || f.Unit != "page 0" {
		t.Fatalf("finding=%+v", f)
	}
	if rep.BytesScanned != storage.PageSize {
		t.Fatalf("scanned=%d", rep.BytesScanned)
	}
}

func TestNeedleForStoredMatchesEncoding(t *testing.T) {
	v := value.Int(424242)
	n := NeedleForStored("node", v)
	s := storage.NewMemStore()
	id, _ := s.Allocate()
	page := make([]byte, storage.PageSize)
	copy(page[7:], value.Encode(nil, v))
	s.WritePage(id, page)
	rep, _ := ScanStore(s, []Needle{n})
	if rep.Clean() {
		t.Fatal("stored encoding not found")
	}
}

func TestScanDirAndFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-1.log"), []byte("xxleak-herexx"), 0o600); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "sub")
	os.MkdirAll(sub, 0o700)
	os.WriteFile(filepath.Join(sub, "keys.db"), []byte("clean"), 0o600)
	rep, err := ScanDir(dir, []Needle{NeedleForText("leak", "leak-here")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 || rep.Findings[0].Unit != "wal-1.log" {
		t.Fatalf("findings=%v", rep.Findings)
	}
	// Missing paths scan clean.
	rep, err = ScanDir(filepath.Join(dir, "nope"), nil)
	if err != nil || !rep.Clean() {
		t.Fatalf("missing dir: %v %v", rep, err)
	}
	rep, err = ScanFile(filepath.Join(dir, "nope.bin"), nil)
	if err != nil || !rep.Clean() {
		t.Fatalf("missing file: %v %v", rep, err)
	}
}

func TestSnapshot(t *testing.T) {
	s := storage.NewMemStore()
	for i := 0; i < 3; i++ {
		id, _ := s.Allocate()
		page := make([]byte, storage.PageSize)
		page[0] = byte(i + 1)
		s.WritePage(id, page)
	}
	snap, err := Snapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 3*storage.PageSize {
		t.Fatalf("snapshot size %d", len(snap))
	}
	if snap[0] != 1 || snap[storage.PageSize] != 2 || snap[2*storage.PageSize] != 3 {
		t.Fatal("snapshot content wrong")
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Artifact: "store", Unit: "page 3", Offset: 9, Label: "x"}
	if f.String() == "" {
		t.Fatal("empty finding string")
	}
}

// TestScanReaderSpansChunks: a needle straddling the streaming chunk
// boundary is still found, at its absolute stream offset, and each
// needle is reported once.
func TestScanReaderSpansChunks(t *testing.T) {
	needle := []byte("SPLIT-NEEDLE")
	// Place the needle across the scanChunk boundary: half before, half
	// after, plus a second full occurrence later in the stream.
	data := make([]byte, scanChunk+4096)
	start := scanChunk - len(needle)/2
	copy(data[start:], needle)
	copy(data[scanChunk+1000:], needle)
	needles := []Needle{{Label: "split", Bytes: needle}}

	rep, err := ScanReader("stream", "unit", bytes.NewReader(data), needles)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesScanned != int64(len(data)) {
		t.Fatalf("scanned %d bytes, want %d", rep.BytesScanned, len(data))
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %v, want exactly one", rep.Findings)
	}
	if rep.Findings[0].Offset != start {
		t.Fatalf("offset %d, want %d (absolute stream offset of the first hit)", rep.Findings[0].Offset, start)
	}

	// Clean stream: no findings, full byte count.
	rep, err = ScanReader("stream", "unit", bytes.NewReader(make([]byte, 3*scanChunk)),
		[]Needle{{Label: "x", Bytes: []byte("absent-needle")}})
	if err != nil || !rep.Clean() || rep.BytesScanned != int64(3*scanChunk) {
		t.Fatalf("clean stream scan: %+v err=%v", rep, err)
	}
}
