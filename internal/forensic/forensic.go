// Package forensic implements the adversary the paper defends against
// (§III, citing Stahlberg, Miklau and Levine, "Threats to privacy in the
// forensic analysis of database systems"): an attacker with raw byte
// access to every persistent artifact — page store, log segments, key
// file — searching for recoverable traces of expired accuracy states.
// The experiment harness uses it to *prove* non-recoverability: after a
// transition's deadline, a scan for the old stored form must come back
// empty.
package forensic

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"instantdb/internal/storage"
	"instantdb/internal/value"
)

// Needle is a byte pattern whose presence in a raw artifact counts as a
// leak, labeled for reporting.
type Needle struct {
	Label string
	Bytes []byte
}

// NeedleForStored builds a needle for a stored degradable value: the
// exact encoding the storage layer and the (plain) log write for it.
func NeedleForStored(label string, v value.Value) Needle {
	return Needle{Label: label, Bytes: value.Encode(nil, v)}
}

// NeedleForText builds a needle for a raw text fragment (stable columns,
// rendered values).
func NeedleForText(label, text string) Needle {
	return Needle{Label: label, Bytes: []byte(text)}
}

// Finding is one located leak.
type Finding struct {
	// Artifact names the scanned surface ("store", or a file path).
	Artifact string
	// Offset is the byte offset of the first occurrence within the
	// artifact unit (page or file).
	Offset int
	// Unit identifies the page id or file.
	Unit string
	// Label is the needle's label.
	Label string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %q at %s+%d", f.Artifact, f.Label, f.Unit, f.Offset)
}

// Report aggregates one scan.
type Report struct {
	BytesScanned int64
	Findings     []Finding
}

// Clean reports whether the scan found no leaks.
func (r Report) Clean() bool { return len(r.Findings) == 0 }

// Merge folds another report into r.
func (r *Report) Merge(other Report) {
	r.BytesScanned += other.BytesScanned
	r.Findings = append(r.Findings, other.Findings...)
}

// ScanStore searches every raw page of a store.
func ScanStore(s storage.Store, needles []Needle) (Report, error) {
	var rep Report
	err := s.ForEachPage(func(id storage.PageID, data []byte) error {
		rep.BytesScanned += int64(len(data))
		for _, n := range needles {
			if off := bytes.Index(data, n.Bytes); off >= 0 {
				rep.Findings = append(rep.Findings, Finding{
					Artifact: "store",
					Unit:     fmt.Sprintf("page %d", id),
					Offset:   off,
					Label:    n.Label,
				})
			}
		}
		return nil
	})
	return rep, err
}

// ScanFile searches one file; missing files scan clean. The file is
// streamed through ScanReader, so arbitrarily large artifacts — backup
// archives in particular — scan in constant memory.
func ScanFile(path string, needles []Needle) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return Report{}, nil
		}
		return Report{}, err
	}
	defer f.Close()
	return ScanReader(path, filepath.Base(path), f, needles)
}

// scanChunk is ScanReader's read granularity.
const scanChunk = 256 << 10

// ScanReader streams r in chunks, searching for every needle. A tail of
// maxNeedleLen-1 bytes is carried between chunks, so matches spanning a
// chunk boundary are found; reported offsets are absolute within the
// stream, and only the first occurrence of each needle is recorded.
// This is the scan primitive for artifacts that are not files on disk —
// a backup archive still in flight, a network stream, a pipe.
func ScanReader(artifact, unit string, r io.Reader, needles []Needle) (Report, error) {
	var rep Report
	maxLen := 0
	for _, n := range needles {
		if len(n.Bytes) > maxLen {
			maxLen = len(n.Bytes)
		}
	}
	if maxLen == 0 {
		n, err := io.Copy(io.Discard, r)
		rep.BytesScanned = n
		return rep, err
	}
	found := make([]bool, len(needles))
	buf := make([]byte, 0, scanChunk+maxLen)
	var base int64 // stream offset of buf[0]
	for {
		n, err := io.ReadAtLeast(r, buf[len(buf):cap(buf)], 1)
		if n > 0 {
			rep.BytesScanned += int64(n)
			buf = buf[:len(buf)+n]
			for i, nd := range needles {
				if found[i] {
					continue
				}
				if off := bytes.Index(buf, nd.Bytes); off >= 0 {
					found[i] = true
					rep.Findings = append(rep.Findings, Finding{
						Artifact: artifact, Unit: unit, Offset: int(base) + off, Label: nd.Label,
					})
				}
			}
			// Keep the overlap tail; everything before it is fully scanned.
			if keep := maxLen - 1; len(buf) > keep {
				base += int64(len(buf) - keep)
				copy(buf, buf[len(buf)-keep:])
				buf = buf[:keep]
			}
		}
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return rep, nil
			}
			return rep, err
		}
	}
}

// ScanDir searches every regular file under dir (the WAL directory, the
// key file's directory, or a whole database directory).
func ScanDir(dir string, needles []Needle) (Report, error) {
	var rep Report
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		sub, err := ScanFile(path, needles)
		if err != nil {
			return err
		}
		rep.Merge(sub)
		return nil
	})
	if os.IsNotExist(err) {
		err = nil
	}
	return rep, err
}

// Snapshot is the attacker's periodic-dump primitive (experiment E2): it
// copies every live page, modeling a one-shot raw exfiltration of the
// data space. The returned byte slab can be searched later.
func Snapshot(s storage.Store) ([]byte, error) {
	var out []byte
	err := s.ForEachPage(func(_ storage.PageID, data []byte) error {
		out = append(out, data...)
		return nil
	})
	return out, err
}
