// Package forensic implements the adversary the paper defends against
// (§III, citing Stahlberg, Miklau and Levine, "Threats to privacy in the
// forensic analysis of database systems"): an attacker with raw byte
// access to every persistent artifact — page store, log segments, key
// file — searching for recoverable traces of expired accuracy states.
// The experiment harness uses it to *prove* non-recoverability: after a
// transition's deadline, a scan for the old stored form must come back
// empty.
package forensic

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"instantdb/internal/storage"
	"instantdb/internal/value"
)

// Needle is a byte pattern whose presence in a raw artifact counts as a
// leak, labeled for reporting.
type Needle struct {
	Label string
	Bytes []byte
}

// NeedleForStored builds a needle for a stored degradable value: the
// exact encoding the storage layer and the (plain) log write for it.
func NeedleForStored(label string, v value.Value) Needle {
	return Needle{Label: label, Bytes: value.Encode(nil, v)}
}

// NeedleForText builds a needle for a raw text fragment (stable columns,
// rendered values).
func NeedleForText(label, text string) Needle {
	return Needle{Label: label, Bytes: []byte(text)}
}

// Finding is one located leak.
type Finding struct {
	// Artifact names the scanned surface ("store", or a file path).
	Artifact string
	// Offset is the byte offset of the first occurrence within the
	// artifact unit (page or file).
	Offset int
	// Unit identifies the page id or file.
	Unit string
	// Label is the needle's label.
	Label string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %q at %s+%d", f.Artifact, f.Label, f.Unit, f.Offset)
}

// Report aggregates one scan.
type Report struct {
	BytesScanned int64
	Findings     []Finding
}

// Clean reports whether the scan found no leaks.
func (r Report) Clean() bool { return len(r.Findings) == 0 }

// Merge folds another report into r.
func (r *Report) Merge(other Report) {
	r.BytesScanned += other.BytesScanned
	r.Findings = append(r.Findings, other.Findings...)
}

// ScanStore searches every raw page of a store.
func ScanStore(s storage.Store, needles []Needle) (Report, error) {
	var rep Report
	err := s.ForEachPage(func(id storage.PageID, data []byte) error {
		rep.BytesScanned += int64(len(data))
		for _, n := range needles {
			if off := bytes.Index(data, n.Bytes); off >= 0 {
				rep.Findings = append(rep.Findings, Finding{
					Artifact: "store",
					Unit:     fmt.Sprintf("page %d", id),
					Offset:   off,
					Label:    n.Label,
				})
			}
		}
		return nil
	})
	return rep, err
}

// ScanFile searches one file.
func ScanFile(path string, needles []Needle) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return rep, nil
		}
		return rep, err
	}
	rep.BytesScanned = int64(len(data))
	for _, n := range needles {
		if off := bytes.Index(data, n.Bytes); off >= 0 {
			rep.Findings = append(rep.Findings, Finding{
				Artifact: path, Unit: filepath.Base(path), Offset: off, Label: n.Label,
			})
		}
	}
	return rep, nil
}

// ScanDir searches every regular file under dir (the WAL directory, the
// key file's directory, or a whole database directory).
func ScanDir(dir string, needles []Needle) (Report, error) {
	var rep Report
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		sub, err := ScanFile(path, needles)
		if err != nil {
			return err
		}
		rep.Merge(sub)
		return nil
	})
	if os.IsNotExist(err) {
		err = nil
	}
	return rep, err
}

// Snapshot is the attacker's periodic-dump primitive (experiment E2): it
// copies every live page, modeling a one-shot raw exfiltration of the
// data space. The returned byte slab can be searched later.
func Snapshot(s storage.Store) ([]byte, error) {
	var out []byte
	err := s.ForEachPage(func(_ storage.PageID, data []byte) error {
		out = append(out, data...)
		return nil
	})
	return out, err
}
