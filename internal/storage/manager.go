package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"instantdb/internal/catalog"
)

// Manager owns one Store and hands out TableStores over it. It maintains
// the free-page list (scrubbed pages ready for reuse) and rebuilds all
// in-memory directories from raw pages at recovery. It also carries the
// snapshot-epoch stamps of the MVCC-lite read path: the engine sets the
// stamping epoch before applying a commit batch, and every tuple written
// during the apply is born at that epoch (see table.go; epoch 0 — the
// default for callers that never wire epochs — disables versioning and
// makes every tuple visible to every snapshot).
type Manager struct {
	mu     sync.Mutex
	store  Store
	free   []PageID
	tables map[uint32]*TableStore

	// stamp is the epoch in-flight mutations are born at; lowWater is
	// the oldest snapshot epoch still open, below which superseded row
	// versions are unreachable and pruned.
	stamp    atomic.Uint64
	lowWater atomic.Uint64

	// pruned counts version-chain entries dropped (low-water or
	// MaxTupleVersions truncation); exposed as a metric by the engine.
	pruned atomic.Uint64
}

// PrunedVersions returns the total number of superseded row versions
// pruned from version chains since open.
func (m *Manager) PrunedVersions() uint64 { return m.pruned.Load() }

// NewManager wraps a raw page store.
func NewManager(store Store) *Manager {
	return &Manager{store: store, tables: make(map[uint32]*TableStore)}
}

// Store returns the underlying raw page store (the forensic scanner and
// checkpointing use it directly).
func (m *Manager) Store() Store { return m.store }

// SetStampEpoch sets the epoch subsequently applied mutations are born
// at, and the low-water mark of open snapshots for version pruning. The
// engine calls it under its commit mutex before applying each batch.
func (m *Manager) SetStampEpoch(stamp, lowWater uint64) {
	m.stamp.Store(stamp)
	m.lowWater.Store(lowWater)
}

// StampEpoch returns the current mutation-stamping epoch.
func (m *Manager) StampEpoch() uint64 { return m.stamp.Load() }

// Table returns the TableStore for a catalog table, creating it on first
// use.
func (m *Manager) Table(tbl *catalog.Table) *TableStore {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts, ok := m.tables[tbl.ID]
	if !ok {
		ts = newTableStore(m, tbl)
		m.tables[tbl.ID] = ts
	}
	return ts
}

// DropTable scrubs and releases every page of a table.
func (m *Manager) DropTable(tableID uint32) error {
	m.mu.Lock()
	ts, ok := m.tables[tableID]
	delete(m.tables, tableID)
	m.mu.Unlock()
	if !ok {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for pid := range ts.pageSeg {
		if err := m.freePage(pid); err != nil {
			return err
		}
	}
	ts.dir = make(map[TupleID]RID)
	ts.segs = make(map[uint64]*segment)
	ts.pageSeg = make(map[PageID]uint64)
	ts.born = make(map[TupleID]uint64)
	ts.hist = make(map[TupleID][]tupleVersion)
	ts.lastSupersede = 0
	return nil
}

// allocPage returns a fresh (or recycled) page initialized for tableID.
// buf (len PageSize) receives the initialized content; the page is not
// yet written — the caller writes after filling it.
func (m *Manager) allocPage(tableID uint32, buf []byte) (PageID, error) {
	m.mu.Lock()
	var pid PageID
	var err error
	if n := len(m.free); n > 0 {
		pid = m.free[n-1]
		m.free = m.free[:n-1]
	} else {
		pid, err = m.store.Allocate()
	}
	m.mu.Unlock()
	if err != nil {
		return 0, err
	}
	initPage(buf, tableID)
	return pid, nil
}

// freePage scrubs a page and returns it to the free list.
func (m *Manager) freePage(pid PageID) error {
	buf := make([]byte, PageSize)
	if err := m.store.WritePage(pid, buf); err != nil {
		return err
	}
	m.mu.Lock()
	m.free = append(m.free, pid)
	m.mu.Unlock()
	return nil
}

// Sync flushes the page store (checkpoint support).
func (m *Manager) Sync() error { return m.store.Sync() }

// Rebuild reconstructs every table's in-memory state (tuple directory,
// segments, free list, next tuple id) from raw pages — the recovery path
// after reopening a file-backed database. Pages of tables absent from the
// catalog (dropped tables) are scrubbed and freed.
func (m *Manager) Rebuild(cat *catalog.Catalog) error {
	m.mu.Lock()
	m.free = nil
	m.tables = make(map[uint32]*TableStore)
	m.mu.Unlock()

	type orphan struct{ pid PageID }
	var orphans []orphan
	err := m.store.ForEachPage(func(pid PageID, data []byte) error {
		if !pageInUse(data) {
			m.mu.Lock()
			m.free = append(m.free, pid)
			m.mu.Unlock()
			return nil
		}
		tbl, err := cat.TableByID(pageTableID(data))
		if err != nil {
			orphans = append(orphans, orphan{pid})
			return nil
		}
		ts := m.Table(tbl)
		ts.mu.Lock()
		defer ts.mu.Unlock()
		n := pageNumSlots(data)
		var segKeySet bool
		var segKey uint64
		live := 0
		for s := uint16(0); s < n; s++ {
			rec, ok := pageRead(data, s)
			if !ok {
				continue
			}
			t, err := decodeRecord(rec)
			if err != nil {
				return fmt.Errorf("storage: rebuild %s page %d slot %d: %w", tbl.Name, pid, s, err)
			}
			live++
			ts.dir[t.ID] = RID{Page: pid, Slot: s}
			if t.ID > ts.nextID {
				ts.nextID = t.ID
			}
			if !segKeySet {
				segKey = ts.segKeyFor(t.States)
				segKeySet = true
			}
		}
		if live == 0 {
			// In-use header but no live tuples (crash between scrub and
			// free): scrub fully and free.
			orphans = append(orphans, orphan{pid})
			return nil
		}
		seg, ok := ts.segs[segKey]
		if !ok {
			seg = newSegment()
			ts.segs[segKey] = seg
		}
		seg.pages[pid] = struct{}{}
		ts.pageSeg[pid] = segKey
		if pageFreeSpace(data) >= openSpaceThreshold {
			seg.open = append(seg.open, pid)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, o := range orphans {
		if err := m.freePage(o.pid); err != nil {
			return err
		}
	}
	return nil
}
