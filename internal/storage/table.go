package storage

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"instantdb/internal/catalog"
	"instantdb/internal/value"
)

// ErrNoTuple is returned for operations on unknown tuple ids.
var ErrNoTuple = errors.New("storage: no such tuple")

// openSpaceThreshold removes a page from the open list once its free
// space drops below this many bytes.
const openSpaceThreshold = 64

var pagePool = sync.Pool{New: func() any {
	b := make([]byte, PageSize)
	return &b
}}

// segment is the set of pages holding tuples of one tuple state (the
// paper's STk subset). Tables with LayoutInPlace use a single mixed
// segment.
type segment struct {
	pages map[PageID]struct{}
	open  []PageID // pages believed to have insert space
}

func newSegment() *segment { return &segment{pages: make(map[PageID]struct{})} }

// MaxTupleVersions bounds the per-row version chain of the snapshot
// read path. When an update would push the chain past the cap, the
// oldest version is dropped and its birth epoch merged into its
// successor, so every snapshot still resolves to *a* version — at worst
// one slightly newer than the snapshot (bounded staleness) — and chain
// memory stays O(1) per hot row.
const MaxTupleVersions = 4

// tupleVersion is one superseded row image, visible to snapshots in
// [born, died). Chains are contiguous: each version's died equals the
// next version's born, and the last version's died equals the current
// tuple's birth epoch.
type tupleVersion struct {
	born, died uint64
	t          Tuple
}

// TableStore stores the tuples of one table. All methods are safe for
// concurrent use; logical isolation (two-phase locking for writers,
// snapshot epochs for the lock-free read path) lives in the transaction
// layer above.
type TableStore struct {
	mu      sync.RWMutex
	mgr     *Manager
	tbl     *catalog.Table
	dir     map[TupleID]RID
	segs    map[uint64]*segment
	pageSeg map[PageID]uint64
	nextID  TupleID

	// born is the epoch each live tuple's current image became visible
	// at (absent = epoch 0: visible to every snapshot). hist holds
	// superseded images for snapshot readers — written by stable-column
	// updates only. Degradation transitions never create versions: they
	// overwrite the degradable column in place *and* in every retained
	// version, and deletions drop the whole chain, so no accuracy state
	// outlives its LCP deadline in a version chain (the intentional
	// deviation from classic snapshot isolation).
	born map[TupleID]uint64
	hist map[TupleID][]tupleVersion
	// lastSupersede is the highest epoch at which any stable-column
	// update superseded a tuple image (monotone: epochs only grow). A
	// snapshot at or past it provably sees every current image, so
	// stable-column indexes serve it exactly; older snapshots may need
	// chain images (HasVisibleHistory).
	lastSupersede uint64

	// scans counts active SnapshotScans; while it is non-zero,
	// relocated records every tuple that moved between pages (segment
	// moves during degradation, oversized in-place rewrites), so a scan
	// can re-examine exactly the tuples its page-list snapshot may have
	// missed — bounded by mid-scan churn, never by table size. The list
	// is truncated when the last scan finishes.
	scans     int
	relocated []TupleID
}

func newTableStore(mgr *Manager, tbl *catalog.Table) *TableStore {
	return &TableStore{
		mgr:     mgr,
		tbl:     tbl,
		dir:     make(map[TupleID]RID),
		segs:    make(map[uint64]*segment),
		pageSeg: make(map[PageID]uint64),
		born:    make(map[TupleID]uint64),
		hist:    make(map[TupleID][]tupleVersion),
	}
}

// Def returns the catalog definition this store serves.
func (ts *TableStore) Def() *catalog.Table { return ts.tbl }

// segKeyFor maps a tuple state vector to its segment key under the
// table's layout: state-partitioned for LayoutMove, one mixed segment for
// LayoutInPlace.
func (ts *TableStore) segKeyFor(states []uint8) uint64 {
	if ts.tbl.Layout == catalog.LayoutInPlace {
		return 0
	}
	return stateKey(states)
}

// ReserveID allocates a tuple id without storing anything. The engine
// reserves ids for transaction write sets so WAL records carry final ids
// before the deferred apply.
func (ts *TableStore) ReserveID() TupleID {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.nextID++
	return ts.nextID
}

// Insert stores a new tuple and returns its id.
func (ts *TableStore) Insert(row []value.Value, states []uint8, at time.Time) (TupleID, error) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	id := ts.nextID + 1
	if err := ts.insertLocked(id, row, states, at); err != nil {
		return 0, err
	}
	ts.nextID = id
	return id, nil
}

// InsertWithID stores a tuple under a caller-chosen id; it is a no-op if
// the id already exists (idempotent redo during recovery).
func (ts *TableStore) InsertWithID(id TupleID, row []value.Value, states []uint8, at time.Time) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, ok := ts.dir[id]; ok {
		return nil
	}
	if err := ts.insertLocked(id, row, states, at); err != nil {
		return err
	}
	if id > ts.nextID {
		ts.nextID = id
	}
	return nil
}

// CheckRecordSize reports whether a tuple would fit a page, without
// encoding it. The engine calls it at statement time so an oversized
// row is refused as a plain SQL error before its redo record reaches
// the durable log — a record appended to the WAL must never fail to
// apply (or to replay during recovery).
func CheckRecordSize(states []uint8, row []value.Value) error {
	// Record layout (encodeRecord): id u64 | insertNano i64 | nDeg u8 |
	// states | EncodeRow(row).
	n := 16 + 1 + len(states) + value.RowEncodedSize(row)
	if n > MaxRecordSize {
		return fmt.Errorf("%w: %d bytes (max %d)", ErrRecordTooLarge, n, MaxRecordSize)
	}
	return nil
}

func (ts *TableStore) insertLocked(id TupleID, row []value.Value, states []uint8, at time.Time) error {
	if len(row) != len(ts.tbl.Columns) {
		return fmt.Errorf("storage: %s: row has %d columns, want %d", ts.tbl.Name, len(row), len(ts.tbl.Columns))
	}
	if len(states) != len(ts.tbl.DegradableColumns()) {
		return fmt.Errorf("storage: %s: state vector has %d entries, want %d",
			ts.tbl.Name, len(states), len(ts.tbl.DegradableColumns()))
	}
	rec := encodeRecord(nil, id, at, states, row)
	if len(rec) > MaxRecordSize {
		return fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
	}
	rid, err := ts.placeLocked(ts.segKeyFor(states), rec)
	if err != nil {
		return err
	}
	ts.dir[id] = rid
	if e := ts.mgr.stamp.Load(); e > 0 {
		ts.born[id] = e
	}
	return nil
}

// placeLocked finds room for rec in the segment and writes it.
func (ts *TableStore) placeLocked(key uint64, rec []byte) (RID, error) {
	seg, ok := ts.segs[key]
	if !ok {
		seg = newSegment()
		ts.segs[key] = seg
	}
	bufp := pagePool.Get().(*[]byte)
	defer pagePool.Put(bufp)
	buf := *bufp
	// Try open pages from most recently opened.
	for len(seg.open) > 0 {
		pid := seg.open[len(seg.open)-1]
		if err := ts.mgr.store.ReadPage(pid, buf); err != nil {
			return RID{}, err
		}
		slot, ok := pageInsert(buf, rec)
		if ok {
			if pageFreeSpace(buf) < openSpaceThreshold {
				seg.open = seg.open[:len(seg.open)-1]
			}
			if err := ts.mgr.store.WritePage(pid, buf); err != nil {
				return RID{}, err
			}
			return RID{Page: pid, Slot: slot}, nil
		}
		seg.open = seg.open[:len(seg.open)-1]
	}
	// Allocate a fresh page.
	pid, err := ts.mgr.allocPage(ts.tbl.ID, buf)
	if err != nil {
		return RID{}, err
	}
	slot, ok := pageInsert(buf, rec)
	if !ok {
		return RID{}, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
	}
	if err := ts.mgr.store.WritePage(pid, buf); err != nil {
		return RID{}, err
	}
	seg.pages[pid] = struct{}{}
	ts.pageSeg[pid] = key
	if pageFreeSpace(buf) >= openSpaceThreshold {
		seg.open = append(seg.open, pid)
	}
	return RID{Page: pid, Slot: slot}, nil
}

// Get materializes a tuple by id.
func (ts *TableStore) Get(id TupleID) (Tuple, error) {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	rid, ok := ts.dir[id]
	if !ok {
		return Tuple{}, fmt.Errorf("%w: %s #%d", ErrNoTuple, ts.tbl.Name, id)
	}
	return ts.readLocked(rid)
}

func (ts *TableStore) readLocked(rid RID) (Tuple, error) {
	bufp := pagePool.Get().(*[]byte)
	defer pagePool.Put(bufp)
	buf := *bufp
	if err := ts.mgr.store.ReadPage(rid.Page, buf); err != nil {
		return Tuple{}, err
	}
	rec, ok := pageRead(buf, rid.Slot)
	if !ok {
		return Tuple{}, fmt.Errorf("storage: %s: dangling rid %v", ts.tbl.Name, rid)
	}
	return decodeRecord(rec)
}

// Delete removes a tuple, scrubbing its payload — including every
// retained snapshot version: deletion is enforcement-grade in this
// system (tuple-LCP removals ride the same path), so no image of a
// deleted tuple survives for readers, whatever snapshots are open.
// Unknown ids are a no-op (idempotent redo).
func (ts *TableStore) Delete(id TupleID) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	rid, ok := ts.dir[id]
	if !ok {
		return nil
	}
	if err := ts.eraseLocked(rid); err != nil {
		return err
	}
	delete(ts.dir, id)
	delete(ts.born, id)
	delete(ts.hist, id)
	return nil
}

// eraseLocked scrubs the slot and recycles the page if it became empty.
func (ts *TableStore) eraseLocked(rid RID) error {
	bufp := pagePool.Get().(*[]byte)
	defer pagePool.Put(bufp)
	buf := *bufp
	if err := ts.mgr.store.ReadPage(rid.Page, buf); err != nil {
		return err
	}
	live, err := pageDelete(buf, rid.Slot)
	if err != nil {
		return err
	}
	if live == 0 {
		return ts.recyclePageLocked(rid.Page)
	}
	return ts.mgr.store.WritePage(rid.Page, buf)
}

func (ts *TableStore) recyclePageLocked(pid PageID) error {
	key, ok := ts.pageSeg[pid]
	if ok {
		seg := ts.segs[key]
		delete(seg.pages, pid)
		for i, p := range seg.open {
			if p == pid {
				seg.open = append(seg.open[:i], seg.open[i+1:]...)
				break
			}
		}
		delete(ts.pageSeg, pid)
	}
	return ts.mgr.freePage(pid)
}

// DegradeAttr applies one LCP transition to a tuple: the degradable
// column at position degPos (in DegradableColumns order) moves to state
// newState with stored form newStored. The previous stored form is
// physically scrubbed: overwritten in place when the layout allows it,
// otherwise deleted-and-rewritten in the target state segment. The
// transition also overwrites the column in every retained snapshot
// version of the tuple — version garbage collection of expired accuracy
// states is pinned to the LCP deadline that drives this call, never to
// reader lifetimes, so a snapshot reader straddling the deadline
// observes the degraded value (the documented deviation from classic
// snapshot isolation). Unknown ids are a no-op (idempotent redo).
func (ts *TableStore) DegradeAttr(id TupleID, degPos int, newStored value.Value, newState uint8) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	rid, ok := ts.dir[id]
	if !ok {
		return nil
	}
	t, err := ts.readLocked(rid)
	if err != nil {
		return err
	}
	if degPos < 0 || degPos >= len(t.States) {
		return fmt.Errorf("storage: %s: degradable position %d out of %d", ts.tbl.Name, degPos, len(t.States))
	}
	// Transitions are monotone down the generalization tree: a
	// transition the attribute has already made (or passed) is a no-op.
	// This is what makes a leader's degrade batch and a replica's
	// locally fired transition reconcile idempotently — whichever clock
	// fires first wins, and the late copy can never resurrect accuracy.
	if !StateAdvances(t.States[degPos], newState) {
		return nil
	}
	col := ts.tbl.DegradableColumns()[degPos]
	t.States[degPos] = newState
	t.Row[col] = newStored
	for i := range ts.hist[id] {
		v := &ts.hist[id][i]
		if degPos < len(v.t.States) {
			v.t.States[degPos] = newState
			v.t.Row[col] = newStored
		}
	}
	return ts.rewriteLocked(id, rid, t)
}

// UpdateStable overwrites a stable column, retaining the superseded row
// image in the tuple's version chain for open snapshots. Degradable
// columns are immutable after insert (paper §II); callers enforce that
// rule — this method checks it defensively.
func (ts *TableStore) UpdateStable(id TupleID, col int, v value.Value) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.tbl.DegradablePos(col) != -1 {
		return fmt.Errorf("storage: %s: column %d is degradable and immutable", ts.tbl.Name, col)
	}
	rid, ok := ts.dir[id]
	if !ok {
		return fmt.Errorf("%w: %s #%d", ErrNoTuple, ts.tbl.Name, id)
	}
	t, err := ts.readLocked(rid)
	if err != nil {
		return err
	}
	old := cloneTuple(t)
	t.Row[col] = v
	if err := ts.rewriteLocked(id, rid, t); err != nil {
		return err
	}
	ts.pushVersionLocked(id, old)
	return nil
}

// cloneTuple deep-copies a tuple's slices so version-chain images and
// snapshot results never alias live storage state.
func cloneTuple(t Tuple) Tuple {
	t.States = append([]uint8(nil), t.States...)
	t.Row = append([]value.Value(nil), t.Row...)
	return t
}

// pushVersionLocked records the pre-update image of a tuple for
// snapshot readers, pruning versions no open snapshot can reach and
// truncating to MaxTupleVersions with birth-epoch merging. A stamp
// epoch of 0 (no epoch wiring) or a same-epoch rewrite (an intermediate
// image no snapshot can ever observe) keeps no version.
func (ts *TableStore) pushVersionLocked(id TupleID, old Tuple) {
	e := ts.mgr.stamp.Load()
	if e == 0 || ts.born[id] == e {
		return
	}
	chain := append(ts.hist[id], tupleVersion{born: ts.born[id], died: e, t: old})
	ts.lastSupersede = e
	low := ts.mgr.lowWater.Load()
	for len(chain) > 0 && chain[0].died <= low {
		chain = chain[1:]
		ts.mgr.pruned.Add(1)
	}
	if len(chain) > MaxTupleVersions {
		drop := len(chain) - MaxTupleVersions
		chain[drop].born = chain[0].born
		chain = chain[drop:]
		ts.mgr.pruned.Add(uint64(drop))
	}
	if len(chain) == 0 {
		delete(ts.hist, id)
	} else {
		ts.hist[id] = chain
	}
	ts.born[id] = e
}

// rewriteLocked re-encodes a tuple after modification, preferring
// in-place overwrite when the layout keeps the tuple in its segment,
// falling back to scrub-and-move.
func (ts *TableStore) rewriteLocked(id TupleID, rid RID, t Tuple) error {
	rec := encodeRecord(nil, t.ID, t.InsertedAt, t.States, t.Row)
	if len(rec) > MaxRecordSize {
		return fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
	}
	oldKey := ts.pageSeg[rid.Page]
	newKey := ts.segKeyFor(t.States)
	if oldKey == newKey {
		// Same segment: try the in-place path.
		bufp := pagePool.Get().(*[]byte)
		buf := *bufp
		if err := ts.mgr.store.ReadPage(rid.Page, buf); err != nil {
			pagePool.Put(bufp)
			return err
		}
		if pageOverwrite(buf, rid.Slot, rec) {
			err := ts.mgr.store.WritePage(rid.Page, buf)
			pagePool.Put(bufp)
			return err
		}
		pagePool.Put(bufp)
	}
	// Move: scrub the old copy, place the new one in its segment.
	if err := ts.eraseLocked(rid); err != nil {
		return err
	}
	newRID, err := ts.placeLocked(newKey, rec)
	if err != nil {
		return err
	}
	ts.dir[id] = newRID
	if ts.scans > 0 {
		ts.relocated = append(ts.relocated, id)
	}
	return nil
}

// Scan calls fn with every live tuple. fn returning false stops the scan.
// The scan holds the table read lock; concurrent writers block.
func (ts *TableStore) Scan(fn func(Tuple) bool) error {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	for pid := range ts.pageSeg {
		stop, err := ts.scanPageLocked(pid, fn)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// SnapshotGet materializes the version of a tuple visible to snapshot
// epoch snap: the current image if it was born at or before snap,
// otherwise the retained version covering snap. ErrNoTuple means the
// tuple does not exist at that snapshot — deleted (version chains are
// scrubbed on delete), or inserted after the snapshot was taken.
func (ts *TableStore) SnapshotGet(id TupleID, snap uint64) (Tuple, error) {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	rid, ok := ts.dir[id]
	if !ok {
		return Tuple{}, fmt.Errorf("%w: %s #%d", ErrNoTuple, ts.tbl.Name, id)
	}
	t, err := ts.readLocked(rid)
	if err != nil {
		return Tuple{}, err
	}
	if v, ok := ts.visibleLocked(t, snap); ok {
		return v, nil
	}
	return Tuple{}, fmt.Errorf("%w: %s #%d at snapshot %d", ErrNoTuple, ts.tbl.Name, id, snap)
}

// visibleLocked resolves the image of a live tuple visible to snapshot
// snap: the current image when born at or before snap, else the version
// covering snap. ok=false means the tuple was inserted after the
// snapshot. Returned tuples never alias chain or page state.
func (ts *TableStore) visibleLocked(cur Tuple, snap uint64) (Tuple, bool) {
	if ts.born[cur.ID] <= snap {
		return cur, true
	}
	chain := ts.hist[cur.ID]
	for i := len(chain) - 1; i >= 0; i-- {
		v := &chain[i]
		if v.born <= snap && snap < v.died {
			return cloneTuple(v.t), true
		}
	}
	return Tuple{}, false
}

// SnapshotScan calls fn with the image of every tuple visible to
// snapshot epoch snap. Unlike Scan, it never holds the table lock
// across fn or across pages: the page list is snapshotted up front,
// each page is decoded under a short read lock, and tuples that moved
// to pages allocated mid-scan are picked up from the directory in a
// final sweep — so a slow consumer never delays writers, in particular
// the degradation engine's transition batches. Tuples inserted after
// the snapshot are invisible; tuples deleted mid-scan may or may not
// appear (their chains are scrubbed); degradable columns always carry
// their *current* accuracy state, whatever the snapshot (the documented
// deviation from classic snapshot isolation).
func (ts *TableStore) SnapshotScan(snap uint64, fn func(Tuple) bool) error {
	ts.mu.Lock()
	pids := make([]PageID, 0, len(ts.pageSeg))
	for pid := range ts.pageSeg {
		pids = append(pids, pid)
	}
	ts.scans++
	ts.mu.Unlock()
	defer func() {
		ts.mu.Lock()
		ts.scans--
		if ts.scans == 0 {
			ts.relocated = ts.relocated[:0]
		}
		ts.mu.Unlock()
	}()

	seen := make(map[TupleID]bool)
	var batch []Tuple
	for _, pid := range pids {
		batch = batch[:0]
		ts.mu.RLock()
		if _, live := ts.pageSeg[pid]; !live {
			ts.mu.RUnlock()
			continue // page recycled mid-scan; its tuples moved or died
		}
		err := ts.collectPageLocked(pid, snap, seen, &batch)
		ts.mu.RUnlock()
		if err != nil {
			return err
		}
		for i := range batch {
			if !fn(batch[i]) {
				return nil
			}
		}
	}
	// Tuples that moved between pages mid-scan may have dodged the page
	// loop (their new page postdates the page-list snapshot, or was
	// visited before they arrived). The relocation list records exactly
	// those ids — O(mid-scan churn), never O(table) — and they are
	// resolved in bounded chunks, so this sweep, like the page loop
	// above, never holds the table lock long enough to delay a
	// degradation transition batch.
	ts.mu.RLock()
	var missing []TupleID
	for _, id := range ts.relocated {
		if !seen[id] {
			missing = append(missing, id)
		}
	}
	ts.mu.RUnlock()
	const sweepChunk = 64
	for start := 0; start < len(missing); start += sweepChunk {
		end := start + sweepChunk
		if end > len(missing) {
			end = len(missing)
		}
		batch = batch[:0]
		ts.mu.RLock()
		for _, id := range missing[start:end] {
			if seen[id] {
				continue // a tuple that moved more than once
			}
			seen[id] = true
			rid, ok := ts.dir[id]
			if !ok {
				continue // deleted since the id was collected
			}
			t, err := ts.readLocked(rid)
			if err != nil {
				ts.mu.RUnlock()
				return err
			}
			if v, ok := ts.visibleLocked(t, snap); ok {
				batch = append(batch, v)
			}
		}
		ts.mu.RUnlock()
		for i := range batch {
			if !fn(batch[i]) {
				return nil
			}
		}
	}
	return nil
}

// collectPageLocked decodes one page's live tuples, resolving each to
// its snapshot-visible image. Caller holds ts.mu (read).
func (ts *TableStore) collectPageLocked(pid PageID, snap uint64, seen map[TupleID]bool, out *[]Tuple) error {
	bufp := pagePool.Get().(*[]byte)
	defer pagePool.Put(bufp)
	buf := *bufp
	if err := ts.mgr.store.ReadPage(pid, buf); err != nil {
		return err
	}
	n := pageNumSlots(buf)
	for s := uint16(0); s < n; s++ {
		rec, ok := pageRead(buf, s)
		if !ok {
			continue
		}
		t, err := decodeRecord(rec)
		if err != nil {
			return fmt.Errorf("storage: %s page %d slot %d: %w", ts.tbl.Name, pid, s, err)
		}
		if seen[t.ID] {
			continue // already emitted from a page it moved off of
		}
		seen[t.ID] = true
		if v, ok := ts.visibleLocked(t, snap); ok {
			*out = append(*out, v)
		}
	}
	return nil
}

// HasVisibleHistory reports whether some tuple's image at snapshot
// epoch snap may differ from its current image — true while the latest
// stable-column supersede postdates the snapshot. The planner uses it
// to decide whether secondary indexes on stable columns (which reflect
// only current images) can serve a snapshot read exactly; a snapshot
// taken at or after the last supersede can never observe a chain
// image, so indexes serve it even while old chains linger. Callers on
// the snapshot read path must re-check *after* probing an index: the
// supersede marker is set before the index is touched (applyRecord
// updates storage first), so a probe that raced a concurrent update is
// always caught by the second check.
func (ts *TableStore) HasVisibleHistory(snap uint64) bool {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	return ts.lastSupersede > snap
}

// ScanState calls fn with every live tuple in the given tuple state. On
// LayoutMove tables only the matching segment's pages are read; on
// LayoutInPlace the whole table is scanned and filtered — the cost
// difference is the point of experiment B-STORE.
func (ts *TableStore) ScanState(states []uint8, fn func(Tuple) bool) error {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	want := stateKey(states)
	filter := func(t Tuple) bool {
		if stateKey(t.States) != want {
			return true
		}
		return fn(t)
	}
	if ts.tbl.Layout == catalog.LayoutMove {
		seg, ok := ts.segs[want]
		if !ok {
			return nil
		}
		for pid := range seg.pages {
			stop, err := ts.scanPageLocked(pid, filter)
			if err != nil {
				return err
			}
			if stop {
				return nil
			}
		}
		return nil
	}
	for pid := range ts.pageSeg {
		stop, err := ts.scanPageLocked(pid, filter)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

func (ts *TableStore) scanPageLocked(pid PageID, fn func(Tuple) bool) (stop bool, err error) {
	bufp := pagePool.Get().(*[]byte)
	defer pagePool.Put(bufp)
	buf := *bufp
	if err := ts.mgr.store.ReadPage(pid, buf); err != nil {
		return false, err
	}
	n := pageNumSlots(buf)
	for s := uint16(0); s < n; s++ {
		rec, ok := pageRead(buf, s)
		if !ok {
			continue
		}
		t, err := decodeRecord(rec)
		if err != nil {
			return false, fmt.Errorf("storage: %s page %d slot %d: %w", ts.tbl.Name, pid, s, err)
		}
		if !fn(t) {
			return true, nil
		}
	}
	return false, nil
}

// Count returns the number of live tuples.
func (ts *TableStore) Count() int {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	return len(ts.dir)
}

// Stats summarizes physical occupancy for tooling and experiments.
type Stats struct {
	Tuples   int
	Pages    int
	Segments map[uint64]int // state key -> page count
	// Versions counts retained snapshot versions across all tuples.
	Versions int
}

// Stats returns current occupancy.
func (ts *TableStore) Stats() Stats {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	s := Stats{Tuples: len(ts.dir), Pages: len(ts.pageSeg), Segments: make(map[uint64]int)}
	for _, chain := range ts.hist {
		s.Versions += len(chain)
	}
	for key, seg := range ts.segs {
		if len(seg.pages) > 0 {
			s.Segments[key] = len(seg.pages)
		}
	}
	return s
}

// StateKeyOf exposes the state-vector packing for tools and tests.
func StateKeyOf(states []uint8) uint64 { return stateKey(states) }
