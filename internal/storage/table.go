package storage

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"instantdb/internal/catalog"
	"instantdb/internal/value"
)

// ErrNoTuple is returned for operations on unknown tuple ids.
var ErrNoTuple = errors.New("storage: no such tuple")

// openSpaceThreshold removes a page from the open list once its free
// space drops below this many bytes.
const openSpaceThreshold = 64

var pagePool = sync.Pool{New: func() any {
	b := make([]byte, PageSize)
	return &b
}}

// segment is the set of pages holding tuples of one tuple state (the
// paper's STk subset). Tables with LayoutInPlace use a single mixed
// segment.
type segment struct {
	pages map[PageID]struct{}
	open  []PageID // pages believed to have insert space
}

func newSegment() *segment { return &segment{pages: make(map[PageID]struct{})} }

// TableStore stores the tuples of one table. All methods are safe for
// concurrent use; logical isolation (two-phase locking) lives in the
// transaction layer above.
type TableStore struct {
	mu      sync.RWMutex
	mgr     *Manager
	tbl     *catalog.Table
	dir     map[TupleID]RID
	segs    map[uint64]*segment
	pageSeg map[PageID]uint64
	nextID  TupleID
}

func newTableStore(mgr *Manager, tbl *catalog.Table) *TableStore {
	return &TableStore{
		mgr:     mgr,
		tbl:     tbl,
		dir:     make(map[TupleID]RID),
		segs:    make(map[uint64]*segment),
		pageSeg: make(map[PageID]uint64),
	}
}

// Def returns the catalog definition this store serves.
func (ts *TableStore) Def() *catalog.Table { return ts.tbl }

// segKeyFor maps a tuple state vector to its segment key under the
// table's layout: state-partitioned for LayoutMove, one mixed segment for
// LayoutInPlace.
func (ts *TableStore) segKeyFor(states []uint8) uint64 {
	if ts.tbl.Layout == catalog.LayoutInPlace {
		return 0
	}
	return stateKey(states)
}

// ReserveID allocates a tuple id without storing anything. The engine
// reserves ids for transaction write sets so WAL records carry final ids
// before the deferred apply.
func (ts *TableStore) ReserveID() TupleID {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.nextID++
	return ts.nextID
}

// Insert stores a new tuple and returns its id.
func (ts *TableStore) Insert(row []value.Value, states []uint8, at time.Time) (TupleID, error) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	id := ts.nextID + 1
	if err := ts.insertLocked(id, row, states, at); err != nil {
		return 0, err
	}
	ts.nextID = id
	return id, nil
}

// InsertWithID stores a tuple under a caller-chosen id; it is a no-op if
// the id already exists (idempotent redo during recovery).
func (ts *TableStore) InsertWithID(id TupleID, row []value.Value, states []uint8, at time.Time) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, ok := ts.dir[id]; ok {
		return nil
	}
	if err := ts.insertLocked(id, row, states, at); err != nil {
		return err
	}
	if id > ts.nextID {
		ts.nextID = id
	}
	return nil
}

// CheckRecordSize reports whether a tuple would fit a page, without
// encoding it. The engine calls it at statement time so an oversized
// row is refused as a plain SQL error before its redo record reaches
// the durable log — a record appended to the WAL must never fail to
// apply (or to replay during recovery).
func CheckRecordSize(states []uint8, row []value.Value) error {
	// Record layout (encodeRecord): id u64 | insertNano i64 | nDeg u8 |
	// states | EncodeRow(row).
	n := 16 + 1 + len(states) + value.RowEncodedSize(row)
	if n > MaxRecordSize {
		return fmt.Errorf("%w: %d bytes (max %d)", ErrRecordTooLarge, n, MaxRecordSize)
	}
	return nil
}

func (ts *TableStore) insertLocked(id TupleID, row []value.Value, states []uint8, at time.Time) error {
	if len(row) != len(ts.tbl.Columns) {
		return fmt.Errorf("storage: %s: row has %d columns, want %d", ts.tbl.Name, len(row), len(ts.tbl.Columns))
	}
	if len(states) != len(ts.tbl.DegradableColumns()) {
		return fmt.Errorf("storage: %s: state vector has %d entries, want %d",
			ts.tbl.Name, len(states), len(ts.tbl.DegradableColumns()))
	}
	rec := encodeRecord(nil, id, at, states, row)
	if len(rec) > MaxRecordSize {
		return fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
	}
	rid, err := ts.placeLocked(ts.segKeyFor(states), rec)
	if err != nil {
		return err
	}
	ts.dir[id] = rid
	return nil
}

// placeLocked finds room for rec in the segment and writes it.
func (ts *TableStore) placeLocked(key uint64, rec []byte) (RID, error) {
	seg, ok := ts.segs[key]
	if !ok {
		seg = newSegment()
		ts.segs[key] = seg
	}
	bufp := pagePool.Get().(*[]byte)
	defer pagePool.Put(bufp)
	buf := *bufp
	// Try open pages from most recently opened.
	for len(seg.open) > 0 {
		pid := seg.open[len(seg.open)-1]
		if err := ts.mgr.store.ReadPage(pid, buf); err != nil {
			return RID{}, err
		}
		slot, ok := pageInsert(buf, rec)
		if ok {
			if pageFreeSpace(buf) < openSpaceThreshold {
				seg.open = seg.open[:len(seg.open)-1]
			}
			if err := ts.mgr.store.WritePage(pid, buf); err != nil {
				return RID{}, err
			}
			return RID{Page: pid, Slot: slot}, nil
		}
		seg.open = seg.open[:len(seg.open)-1]
	}
	// Allocate a fresh page.
	pid, err := ts.mgr.allocPage(ts.tbl.ID, buf)
	if err != nil {
		return RID{}, err
	}
	slot, ok := pageInsert(buf, rec)
	if !ok {
		return RID{}, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
	}
	if err := ts.mgr.store.WritePage(pid, buf); err != nil {
		return RID{}, err
	}
	seg.pages[pid] = struct{}{}
	ts.pageSeg[pid] = key
	if pageFreeSpace(buf) >= openSpaceThreshold {
		seg.open = append(seg.open, pid)
	}
	return RID{Page: pid, Slot: slot}, nil
}

// Get materializes a tuple by id.
func (ts *TableStore) Get(id TupleID) (Tuple, error) {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	rid, ok := ts.dir[id]
	if !ok {
		return Tuple{}, fmt.Errorf("%w: %s #%d", ErrNoTuple, ts.tbl.Name, id)
	}
	return ts.readLocked(rid)
}

func (ts *TableStore) readLocked(rid RID) (Tuple, error) {
	bufp := pagePool.Get().(*[]byte)
	defer pagePool.Put(bufp)
	buf := *bufp
	if err := ts.mgr.store.ReadPage(rid.Page, buf); err != nil {
		return Tuple{}, err
	}
	rec, ok := pageRead(buf, rid.Slot)
	if !ok {
		return Tuple{}, fmt.Errorf("storage: %s: dangling rid %v", ts.tbl.Name, rid)
	}
	return decodeRecord(rec)
}

// Delete removes a tuple, scrubbing its payload. Unknown ids are a no-op
// (idempotent redo).
func (ts *TableStore) Delete(id TupleID) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	rid, ok := ts.dir[id]
	if !ok {
		return nil
	}
	if err := ts.eraseLocked(rid); err != nil {
		return err
	}
	delete(ts.dir, id)
	return nil
}

// eraseLocked scrubs the slot and recycles the page if it became empty.
func (ts *TableStore) eraseLocked(rid RID) error {
	bufp := pagePool.Get().(*[]byte)
	defer pagePool.Put(bufp)
	buf := *bufp
	if err := ts.mgr.store.ReadPage(rid.Page, buf); err != nil {
		return err
	}
	live, err := pageDelete(buf, rid.Slot)
	if err != nil {
		return err
	}
	if live == 0 {
		return ts.recyclePageLocked(rid.Page)
	}
	return ts.mgr.store.WritePage(rid.Page, buf)
}

func (ts *TableStore) recyclePageLocked(pid PageID) error {
	key, ok := ts.pageSeg[pid]
	if ok {
		seg := ts.segs[key]
		delete(seg.pages, pid)
		for i, p := range seg.open {
			if p == pid {
				seg.open = append(seg.open[:i], seg.open[i+1:]...)
				break
			}
		}
		delete(ts.pageSeg, pid)
	}
	return ts.mgr.freePage(pid)
}

// DegradeAttr applies one LCP transition to a tuple: the degradable
// column at position degPos (in DegradableColumns order) moves to state
// newState with stored form newStored. The previous stored form is
// physically scrubbed: overwritten in place when the layout allows it,
// otherwise deleted-and-rewritten in the target state segment. Unknown
// ids are a no-op (idempotent redo).
func (ts *TableStore) DegradeAttr(id TupleID, degPos int, newStored value.Value, newState uint8) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	rid, ok := ts.dir[id]
	if !ok {
		return nil
	}
	t, err := ts.readLocked(rid)
	if err != nil {
		return err
	}
	if degPos < 0 || degPos >= len(t.States) {
		return fmt.Errorf("storage: %s: degradable position %d out of %d", ts.tbl.Name, degPos, len(t.States))
	}
	col := ts.tbl.DegradableColumns()[degPos]
	t.States[degPos] = newState
	t.Row[col] = newStored
	return ts.rewriteLocked(id, rid, t)
}

// UpdateStable overwrites a stable column. Degradable columns are
// immutable after insert (paper §II); callers enforce that rule — this
// method checks it defensively.
func (ts *TableStore) UpdateStable(id TupleID, col int, v value.Value) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.tbl.DegradablePos(col) != -1 {
		return fmt.Errorf("storage: %s: column %d is degradable and immutable", ts.tbl.Name, col)
	}
	rid, ok := ts.dir[id]
	if !ok {
		return fmt.Errorf("%w: %s #%d", ErrNoTuple, ts.tbl.Name, id)
	}
	t, err := ts.readLocked(rid)
	if err != nil {
		return err
	}
	t.Row[col] = v
	return ts.rewriteLocked(id, rid, t)
}

// rewriteLocked re-encodes a tuple after modification, preferring
// in-place overwrite when the layout keeps the tuple in its segment,
// falling back to scrub-and-move.
func (ts *TableStore) rewriteLocked(id TupleID, rid RID, t Tuple) error {
	rec := encodeRecord(nil, t.ID, t.InsertedAt, t.States, t.Row)
	if len(rec) > MaxRecordSize {
		return fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
	}
	oldKey := ts.pageSeg[rid.Page]
	newKey := ts.segKeyFor(t.States)
	if oldKey == newKey {
		// Same segment: try the in-place path.
		bufp := pagePool.Get().(*[]byte)
		buf := *bufp
		if err := ts.mgr.store.ReadPage(rid.Page, buf); err != nil {
			pagePool.Put(bufp)
			return err
		}
		if pageOverwrite(buf, rid.Slot, rec) {
			err := ts.mgr.store.WritePage(rid.Page, buf)
			pagePool.Put(bufp)
			return err
		}
		pagePool.Put(bufp)
	}
	// Move: scrub the old copy, place the new one in its segment.
	if err := ts.eraseLocked(rid); err != nil {
		return err
	}
	newRID, err := ts.placeLocked(newKey, rec)
	if err != nil {
		return err
	}
	ts.dir[id] = newRID
	return nil
}

// Scan calls fn with every live tuple. fn returning false stops the scan.
// The scan holds the table read lock; concurrent writers block.
func (ts *TableStore) Scan(fn func(Tuple) bool) error {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	for pid := range ts.pageSeg {
		stop, err := ts.scanPageLocked(pid, fn)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// ScanState calls fn with every live tuple in the given tuple state. On
// LayoutMove tables only the matching segment's pages are read; on
// LayoutInPlace the whole table is scanned and filtered — the cost
// difference is the point of experiment B-STORE.
func (ts *TableStore) ScanState(states []uint8, fn func(Tuple) bool) error {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	want := stateKey(states)
	filter := func(t Tuple) bool {
		if stateKey(t.States) != want {
			return true
		}
		return fn(t)
	}
	if ts.tbl.Layout == catalog.LayoutMove {
		seg, ok := ts.segs[want]
		if !ok {
			return nil
		}
		for pid := range seg.pages {
			stop, err := ts.scanPageLocked(pid, filter)
			if err != nil {
				return err
			}
			if stop {
				return nil
			}
		}
		return nil
	}
	for pid := range ts.pageSeg {
		stop, err := ts.scanPageLocked(pid, filter)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

func (ts *TableStore) scanPageLocked(pid PageID, fn func(Tuple) bool) (stop bool, err error) {
	bufp := pagePool.Get().(*[]byte)
	defer pagePool.Put(bufp)
	buf := *bufp
	if err := ts.mgr.store.ReadPage(pid, buf); err != nil {
		return false, err
	}
	n := pageNumSlots(buf)
	for s := uint16(0); s < n; s++ {
		rec, ok := pageRead(buf, s)
		if !ok {
			continue
		}
		t, err := decodeRecord(rec)
		if err != nil {
			return false, fmt.Errorf("storage: %s page %d slot %d: %w", ts.tbl.Name, pid, s, err)
		}
		if !fn(t) {
			return true, nil
		}
	}
	return false, nil
}

// Count returns the number of live tuples.
func (ts *TableStore) Count() int {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	return len(ts.dir)
}

// Stats summarizes physical occupancy for tooling and experiments.
type Stats struct {
	Tuples   int
	Pages    int
	Segments map[uint64]int // state key -> page count
}

// Stats returns current occupancy.
func (ts *TableStore) Stats() Stats {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	s := Stats{Tuples: len(ts.dir), Pages: len(ts.pageSeg), Segments: make(map[uint64]int)}
	for key, seg := range ts.segs {
		if len(seg.pages) > 0 {
			s.Segments[key] = len(seg.pages)
		}
	}
	return s
}

// StateKeyOf exposes the state-vector packing for tools and tests.
func StateKeyOf(states []uint8) uint64 { return stateKey(states) }
