package storage

import (
	"bytes"
	"path/filepath"
	"testing"
)

func testStores(t *testing.T) map[string]func(t *testing.T) Store {
	t.Helper()
	return map[string]func(t *testing.T) Store{
		"mem": func(t *testing.T) Store { return NewMemStore() },
		"file": func(t *testing.T) Store {
			s, err := OpenFileStore(filepath.Join(t.TempDir(), "pages.db"))
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
}

func TestStoreBasics(t *testing.T) {
	for name, open := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			defer s.Close()
			if s.NumPages() != 0 {
				t.Fatal("new store not empty")
			}
			id, err := s.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if id != 0 || s.NumPages() != 1 {
				t.Fatalf("first page id=%d n=%d", id, s.NumPages())
			}
			data := make([]byte, PageSize)
			copy(data, "hello pages")
			if err := s.WritePage(id, data); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, PageSize)
			if err := s.ReadPage(id, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("read != write")
			}
			if err := s.ReadPage(99, got); err == nil {
				t.Fatal("out of range read should fail")
			}
			if err := s.WritePage(99, data); err == nil {
				t.Fatal("out of range write should fail")
			}
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestStoreAllocateZeroed(t *testing.T) {
	for name, open := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			defer s.Close()
			id, _ := s.Allocate()
			buf := make([]byte, PageSize)
			if err := s.ReadPage(id, buf); err != nil {
				t.Fatal(err)
			}
			for _, b := range buf {
				if b != 0 {
					t.Fatal("allocated page not zeroed")
				}
			}
		})
	}
}

func TestStoreForEachPage(t *testing.T) {
	for name, open := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			defer s.Close()
			for i := 0; i < 3; i++ {
				id, _ := s.Allocate()
				data := make([]byte, PageSize)
				data[0] = byte(i + 1)
				if err := s.WritePage(id, data); err != nil {
					t.Fatal(err)
				}
			}
			var seen []byte
			err := s.ForEachPage(func(id PageID, data []byte) error {
				seen = append(seen, data[0])
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(seen, []byte{1, 2, 3}) {
				t.Fatalf("seen=%v", seen)
			}
		})
	}
}

func TestFileStorePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := s.Allocate()
	data := make([]byte, PageSize)
	copy(data, "durable bytes")
	if err := s.WritePage(id, data); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.NumPages() != 1 {
		t.Fatalf("reopened pages=%d", s2.NumPages())
	}
	got := make([]byte, PageSize)
	if err := s2.ReadPage(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content lost across reopen")
	}
	if s2.Path() != path {
		t.Fatalf("Path()=%q", s2.Path())
	}
}

func TestPageOps(t *testing.T) {
	p := make([]byte, PageSize)
	initPage(p, 42)
	if !pageInUse(p) || pageTableID(p) != 42 {
		t.Fatal("init header wrong")
	}
	rec1 := []byte("first record")
	s1, ok := pageInsert(p, rec1)
	if !ok {
		t.Fatal("insert failed")
	}
	rec2 := []byte("second, longer record payload")
	s2, ok := pageInsert(p, rec2)
	if !ok || s2 == s1 {
		t.Fatal("second insert failed")
	}
	got, ok := pageRead(p, s1)
	if !ok || !bytes.Equal(got, rec1) {
		t.Fatalf("read slot1=%q", got)
	}
	if pageLive(p) != 2 {
		t.Fatalf("live=%d", pageLive(p))
	}
	// Delete scrubs.
	live, err := pageDelete(p, s1)
	if err != nil || live != 1 {
		t.Fatalf("delete: live=%d err=%v", live, err)
	}
	if _, ok := pageRead(p, s1); ok {
		t.Fatal("dead slot readable")
	}
	if bytes.Contains(p, rec1) {
		t.Fatal("deleted payload bytes survive in page")
	}
	// Dead slot directory entry is recycled.
	s3, ok := pageInsert(p, []byte("third"))
	if !ok || s3 != s1 {
		t.Fatalf("dead slot not recycled: %d", s3)
	}
	// Overwrite in place with shrink scrubs the tail.
	if !pageOverwrite(p, s2, []byte("tiny")) {
		t.Fatal("overwrite failed")
	}
	got, _ = pageRead(p, s2)
	if !bytes.Equal(got, []byte("tiny")) {
		t.Fatalf("after overwrite: %q", got)
	}
	if bytes.Contains(p, []byte("longer record payload")) {
		t.Fatal("overwritten payload bytes survive")
	}
	// Overwrite that grows is refused.
	if pageOverwrite(p, s2, bytes.Repeat([]byte("x"), 200)) {
		t.Fatal("growing overwrite must be refused")
	}
	// Double delete is a no-op.
	if _, err := pageDelete(p, s2); err != nil {
		t.Fatal(err)
	}
	if _, err := pageDelete(p, s2); err != nil {
		t.Fatal("double delete must not error")
	}
	// Out-of-range slot errors.
	if _, err := pageDelete(p, 99); err == nil {
		t.Fatal("oob delete should fail")
	}
}

func TestPageFillsUp(t *testing.T) {
	p := make([]byte, PageSize)
	initPage(p, 1)
	rec := bytes.Repeat([]byte("z"), 100)
	count := 0
	for {
		if _, ok := pageInsert(p, rec); !ok {
			break
		}
		count++
	}
	// 4096-16 bytes / (100+4) per record ≈ 39.
	if count < 35 || count > 40 {
		t.Fatalf("page held %d 100-byte records", count)
	}
	if pageFreeSpace(p) >= 104 {
		t.Fatal("free space inconsistent with failed insert")
	}
}

func TestPageRejectsOversized(t *testing.T) {
	p := make([]byte, PageSize)
	initPage(p, 1)
	if _, ok := pageInsert(p, make([]byte, MaxRecordSize+1)); ok {
		t.Fatal("oversized record accepted")
	}
	if _, ok := pageInsert(p, make([]byte, MaxRecordSize)); !ok {
		t.Fatal("max-size record refused")
	}
}
