package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Slotted page layout. The header is followed by a slot directory growing
// forward and record data growing backward from the page end. A freed
// page is entirely zero (magic 0), which doubles as the scrub guarantee
// and as the free-page marker recognized during rebuild.
//
//	offset size field
//	0      2    magic (0xDB08 in use, 0x0000 free)
//	2      2    numSlots
//	4      2    freeStart (end of slot directory)
//	6      2    freeEnd   (start of record data)
//	8      2    liveSlots
//	10     2    reserved
//	12     4    tableID
//	16     ...  slot directory: per slot {offset u16, length u16}; offset 0 = dead
const (
	pageMagic  = 0xDB08
	pageHeader = 16
	slotSize   = 4
)

// MaxRecordSize is the largest record a page can hold.
const MaxRecordSize = PageSize - pageHeader - slotSize

// ErrRecordTooLarge is returned when a tuple exceeds MaxRecordSize.
var ErrRecordTooLarge = errors.New("storage: record exceeds page capacity")

func initPage(p []byte, tableID uint32) {
	for i := range p {
		p[i] = 0
	}
	binary.LittleEndian.PutUint16(p[0:], pageMagic)
	binary.LittleEndian.PutUint16(p[2:], 0)
	binary.LittleEndian.PutUint16(p[4:], pageHeader)
	binary.LittleEndian.PutUint16(p[6:], PageSize)
	binary.LittleEndian.PutUint16(p[8:], 0)
	binary.LittleEndian.PutUint32(p[12:], tableID)
}

func pageInUse(p []byte) bool {
	return binary.LittleEndian.Uint16(p[0:]) == pageMagic
}

func pageTableID(p []byte) uint32 {
	return binary.LittleEndian.Uint32(p[12:])
}

func pageNumSlots(p []byte) uint16 { return binary.LittleEndian.Uint16(p[2:]) }
func pageLive(p []byte) uint16     { return binary.LittleEndian.Uint16(p[8:]) }

func slotEntry(p []byte, slot uint16) (off, length uint16) {
	base := pageHeader + int(slot)*slotSize
	return binary.LittleEndian.Uint16(p[base:]), binary.LittleEndian.Uint16(p[base+2:])
}

func setSlotEntry(p []byte, slot uint16, off, length uint16) {
	base := pageHeader + int(slot)*slotSize
	binary.LittleEndian.PutUint16(p[base:], off)
	binary.LittleEndian.PutUint16(p[base+2:], length)
}

// pageFreeSpace returns the bytes available for a new record, accounting
// for a possibly needed new slot entry.
func pageFreeSpace(p []byte) int {
	freeStart := int(binary.LittleEndian.Uint16(p[4:]))
	freeEnd := int(binary.LittleEndian.Uint16(p[6:]))
	gap := freeEnd - freeStart
	// A dead slot can be recycled; otherwise the new record also needs a
	// directory entry.
	if !pageHasDeadSlot(p) {
		gap -= slotSize
	}
	if gap < 0 {
		return 0
	}
	return gap
}

func pageHasDeadSlot(p []byte) bool {
	n := pageNumSlots(p)
	for s := uint16(0); s < n; s++ {
		if off, _ := slotEntry(p, s); off == 0 {
			return true
		}
	}
	return false
}

// pageInsert places rec in the page, returning the slot index. ok is
// false when the page lacks space.
func pageInsert(p []byte, rec []byte) (slot uint16, ok bool) {
	if len(rec) > MaxRecordSize {
		return 0, false
	}
	freeStart := int(binary.LittleEndian.Uint16(p[4:]))
	freeEnd := int(binary.LittleEndian.Uint16(p[6:]))
	// Prefer recycling a dead slot's directory entry.
	n := pageNumSlots(p)
	slot = n
	for s := uint16(0); s < n; s++ {
		if off, _ := slotEntry(p, s); off == 0 {
			slot = s
			break
		}
	}
	need := len(rec)
	if slot == n {
		need += slotSize
	}
	if freeEnd-freeStart < need {
		return 0, false
	}
	dataOff := freeEnd - len(rec)
	copy(p[dataOff:], rec)
	setSlotEntry(p, slot, uint16(dataOff), uint16(len(rec)))
	if slot == n {
		binary.LittleEndian.PutUint16(p[2:], n+1)
		binary.LittleEndian.PutUint16(p[4:], uint16(freeStart+slotSize))
	}
	binary.LittleEndian.PutUint16(p[6:], uint16(dataOff))
	binary.LittleEndian.PutUint16(p[8:], pageLive(p)+1)
	return slot, true
}

// pageRead returns the record bytes of a slot (aliasing the page buffer).
// ok is false for dead or out-of-range slots.
func pageRead(p []byte, slot uint16) ([]byte, bool) {
	if slot >= pageNumSlots(p) {
		return nil, false
	}
	off, length := slotEntry(p, slot)
	if off == 0 {
		return nil, false
	}
	return p[off : off+length], true
}

// pageDelete scrubs a record and marks its slot dead, returning the
// remaining live count. Deleting a dead slot is a no-op.
func pageDelete(p []byte, slot uint16) (live uint16, err error) {
	if slot >= pageNumSlots(p) {
		return pageLive(p), fmt.Errorf("storage: delete slot %d of %d", slot, pageNumSlots(p))
	}
	off, length := slotEntry(p, slot)
	if off == 0 {
		return pageLive(p), nil
	}
	for i := off; i < off+length; i++ {
		p[i] = 0 // scrub: the payload must not survive
	}
	setSlotEntry(p, slot, 0, 0)
	live = pageLive(p) - 1
	binary.LittleEndian.PutUint16(p[8:], live)
	return live, nil
}

// pageOverwrite replaces a record in place when the new encoding fits the
// old slot, scrubbing the tail. ok is false when it does not fit (caller
// falls back to delete+insert).
func pageOverwrite(p []byte, slot uint16, rec []byte) bool {
	if slot >= pageNumSlots(p) {
		return false
	}
	off, length := slotEntry(p, slot)
	if off == 0 || len(rec) > int(length) {
		return false
	}
	copy(p[off:], rec)
	for i := off + uint16(len(rec)); i < off+length; i++ {
		p[i] = 0 // scrub the shrunk tail
	}
	setSlotEntry(p, slot, off, uint16(len(rec)))
	return true
}

// pageScrubFree zero-fills the whole page, turning it into a free page.
func pageScrubFree(p []byte) {
	for i := range p {
		p[i] = 0
	}
}
