package storage

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"instantdb/internal/catalog"
	"instantdb/internal/gentree"
	"instantdb/internal/lcp"
	"instantdb/internal/value"
	"instantdb/internal/vclock"
)

// personFixture builds a Person table over the Figure 1/2 domains.
func personFixture(t *testing.T, layout catalog.StorageLayout) (*catalog.Catalog, *catalog.Table, *gentree.Tree) {
	t.Helper()
	c := catalog.New()
	loc := gentree.Figure1Locations()
	if err := c.AddDomain(loc); err != nil {
		t.Fatal(err)
	}
	pol := lcp.Figure2(loc)
	if err := c.AddPolicy(pol); err != nil {
		t.Fatal(err)
	}
	tbl, err := c.CreateTable("person", []catalog.Column{
		{Name: "id", Kind: value.KindInt},
		{Name: "name", Kind: value.KindText},
		{Name: "location", Kind: value.KindText, Degradable: true, Domain: loc, Policy: pol},
	}, 0, layout)
	if err != nil {
		t.Fatal(err)
	}
	return c, tbl, loc
}

func insertPerson(t *testing.T, ts *TableStore, loc *gentree.Tree, id int64, name, addr string) TupleID {
	t.Helper()
	stored, err := loc.ResolveInsert(value.Text(addr))
	if err != nil {
		t.Fatal(err)
	}
	tid, err := ts.Insert(
		[]value.Value{value.Int(id), value.Text(name), stored},
		[]uint8{0}, vclock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	return tid
}

func TestInsertGetDelete(t *testing.T) {
	_, tbl, loc := personFixture(t, catalog.LayoutMove)
	m := NewManager(NewMemStore())
	ts := m.Table(tbl)
	tid := insertPerson(t, ts, loc, 1, "alice", "Dam 1")
	got, err := ts.Get(tid)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != tid || got.Row[1].Text() != "alice" || got.States[0] != 0 {
		t.Fatalf("got %+v", got)
	}
	if !got.InsertedAt.Equal(vclock.Epoch) {
		t.Fatalf("InsertedAt=%v", got.InsertedAt)
	}
	if ts.Count() != 1 {
		t.Fatalf("Count=%d", ts.Count())
	}
	if err := ts.Delete(tid); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Get(tid); err == nil {
		t.Fatal("deleted tuple still readable")
	}
	if err := ts.Delete(tid); err != nil {
		t.Fatal("delete must be idempotent")
	}
	if ts.Count() != 0 {
		t.Fatal("count after delete")
	}
}

func TestInsertValidation(t *testing.T) {
	_, tbl, _ := personFixture(t, catalog.LayoutMove)
	ts := NewManager(NewMemStore()).Table(tbl)
	if _, err := ts.Insert([]value.Value{value.Int(1)}, []uint8{0}, vclock.Epoch); err == nil {
		t.Error("short row should fail")
	}
	if _, err := ts.Insert([]value.Value{value.Int(1), value.Text("x"), value.Int(2)}, nil, vclock.Epoch); err == nil {
		t.Error("short state vector should fail")
	}
}

func TestInsertWithIDIdempotent(t *testing.T) {
	_, tbl, loc := personFixture(t, catalog.LayoutMove)
	ts := NewManager(NewMemStore()).Table(tbl)
	stored, _ := loc.ResolveInsert(value.Text("Dam 1"))
	row := []value.Value{value.Int(1), value.Text("a"), stored}
	if err := ts.InsertWithID(7, row, []uint8{0}, vclock.Epoch); err != nil {
		t.Fatal(err)
	}
	if err := ts.InsertWithID(7, row, []uint8{0}, vclock.Epoch); err != nil {
		t.Fatal("redo must be idempotent")
	}
	if ts.Count() != 1 {
		t.Fatalf("Count=%d want 1", ts.Count())
	}
	// Fresh inserts continue above the redone id.
	tid, err := ts.Insert(row, []uint8{0}, vclock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if tid <= 7 {
		t.Fatalf("next id %d must exceed redone id 7", tid)
	}
}

// rawContains reports whether any raw page byte run contains needle —
// the forensic primitive used to prove scrubbing.
func rawContains(t *testing.T, s Store, needle string) bool {
	t.Helper()
	found := false
	err := s.ForEachPage(func(_ PageID, data []byte) error {
		if bytes.Contains(data, []byte(needle)) {
			found = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return found
}

func TestDeleteScrubsRawBytes(t *testing.T) {
	_, tbl, loc := personFixture(t, catalog.LayoutMove)
	store := NewMemStore()
	ts := NewManager(store).Table(tbl)
	tid := insertPerson(t, ts, loc, 1, "secret-name-xyzzy", "Dam 1")
	if !rawContains(t, store, "secret-name-xyzzy") {
		t.Fatal("sanity: payload should be visible before delete")
	}
	if err := ts.Delete(tid); err != nil {
		t.Fatal(err)
	}
	if rawContains(t, store, "secret-name-xyzzy") {
		t.Fatal("payload bytes survive delete")
	}
}

func degradeOnce(t *testing.T, ts *TableStore, loc *gentree.Tree, tid TupleID, from, to int) {
	t.Helper()
	tup, err := ts.Get(tid)
	if err != nil {
		t.Fatal(err)
	}
	col := ts.Def().DegradableColumns()[0]
	next, err := loc.Degrade(tup.Row[col], from, to)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.DegradeAttr(tid, 0, next, uint8(to)); err != nil {
		t.Fatal(err)
	}
}

func TestDegradeMoveLayout(t *testing.T) {
	_, tbl, loc := personFixture(t, catalog.LayoutMove)
	store := NewMemStore()
	ts := NewManager(store).Table(tbl)
	tid := insertPerson(t, ts, loc, 1, "alice", "Dam 1")

	st0 := ts.Stats()
	if len(st0.Segments) != 1 {
		t.Fatalf("segments=%v", st0.Segments)
	}
	degradeOnce(t, ts, loc, tid, 0, 1)
	got, err := ts.Get(tid)
	if err != nil {
		t.Fatal(err)
	}
	if got.States[0] != 1 {
		t.Fatalf("state=%d want 1", got.States[0])
	}
	r, err := loc.Render(got.Row[2], 1)
	if err != nil || r.Text() != "Amsterdam" {
		t.Fatalf("rendered %v err=%v", r, err)
	}
	// The tuple moved to the state-1 segment; the state-0 segment page
	// was recycled (it held a single tuple).
	st1 := ts.Stats()
	if _, ok := st1.Segments[StateKeyOf([]uint8{0})]; ok {
		t.Fatalf("state-0 segment should be empty: %v", st1.Segments)
	}
	if _, ok := st1.Segments[StateKeyOf([]uint8{1})]; !ok {
		t.Fatalf("state-1 segment missing: %v", st1.Segments)
	}
}

func TestDegradeErasesOldNodeID(t *testing.T) {
	// The stored form is a node id, not the address string; verify the
	// level-0 record encoding disappears from raw pages after degrade.
	_, tbl, loc := personFixture(t, catalog.LayoutMove)
	store := NewMemStore()
	ts := NewManager(store).Table(tbl)
	tid := insertPerson(t, ts, loc, 1, "alice", "Dam 1")
	tup, _ := ts.Get(tid)
	leafRec := value.Encode(nil, tup.Row[2]) // encoded leaf node id
	found := false
	store.ForEachPage(func(_ PageID, data []byte) error {
		if bytes.Contains(data, leafRec) {
			found = true
		}
		return nil
	})
	if !found {
		t.Fatal("sanity: leaf encoding present before degrade")
	}
	degradeOnce(t, ts, loc, tid, 0, 1)
	found = false
	store.ForEachPage(func(_ PageID, data []byte) error {
		if bytes.Contains(data, leafRec) {
			found = true
		}
		return nil
	})
	if found {
		t.Fatal("leaf node encoding survives degradation")
	}
}

func TestDegradeInPlaceLayout(t *testing.T) {
	_, tbl, loc := personFixture(t, catalog.LayoutInPlace)
	store := NewMemStore()
	ts := NewManager(store).Table(tbl)
	tid := insertPerson(t, ts, loc, 1, "alice", "Dam 1")
	before := ts.Stats()
	degradeOnce(t, ts, loc, tid, 0, 1)
	after := ts.Stats()
	// In-place: same page count, single mixed segment.
	if before.Pages != after.Pages || len(after.Segments) != 1 {
		t.Fatalf("before=%+v after=%+v", before, after)
	}
	got, _ := ts.Get(tid)
	if got.States[0] != 1 {
		t.Fatalf("state=%d", got.States[0])
	}
}

func TestDegradeToErased(t *testing.T) {
	_, tbl, loc := personFixture(t, catalog.LayoutMove)
	ts := NewManager(NewMemStore()).Table(tbl)
	tid := insertPerson(t, ts, loc, 1, "alice", "Dam 1")
	if err := ts.DegradeAttr(tid, 0, value.Null(), StateErased); err != nil {
		t.Fatal(err)
	}
	got, _ := ts.Get(tid)
	if got.States[0] != StateErased || !got.Row[2].IsNull() {
		t.Fatalf("got %+v", got)
	}
	// Unknown id: no-op.
	if err := ts.DegradeAttr(9999, 0, value.Null(), 1); err != nil {
		t.Fatal("degrade of unknown id must be a no-op")
	}
	// Bad position errors.
	if err := ts.DegradeAttr(tid, 5, value.Null(), 1); err == nil {
		t.Fatal("bad degradable position should fail")
	}
}

func TestUpdateStable(t *testing.T) {
	_, tbl, loc := personFixture(t, catalog.LayoutMove)
	store := NewMemStore()
	ts := NewManager(store).Table(tbl)
	tid := insertPerson(t, ts, loc, 1, "shortname", "Dam 1")
	if err := ts.UpdateStable(tid, 1, value.Text("a considerably longer replacement name")); err != nil {
		t.Fatal(err)
	}
	got, _ := ts.Get(tid)
	if got.Row[1].Text() != "a considerably longer replacement name" {
		t.Fatalf("update lost: %v", got.Row[1])
	}
	if rawContains(t, store, "shortname") {
		t.Fatal("old stable value survives update")
	}
	// Shrink goes in place and scrubs the tail.
	if err := ts.UpdateStable(tid, 1, value.Text("bob")); err != nil {
		t.Fatal(err)
	}
	if rawContains(t, store, "longer replacement") {
		t.Fatal("old value survives in-place shrink")
	}
	// Degradable column refused.
	if err := ts.UpdateStable(tid, 2, value.Int(1)); err == nil {
		t.Fatal("degradable column update must be refused")
	}
	// Unknown id errors.
	if err := ts.UpdateStable(12345, 1, value.Text("x")); err == nil {
		t.Fatal("unknown id should fail")
	}
}

func TestScanAndScanState(t *testing.T) {
	for _, layout := range []catalog.StorageLayout{catalog.LayoutMove, catalog.LayoutInPlace} {
		t.Run(layout.String(), func(t *testing.T) {
			_, tbl, loc := personFixture(t, layout)
			ts := NewManager(NewMemStore()).Table(tbl)
			var tids []TupleID
			addrs := []string{"Dam 1", "Museumplein 6", "Coolsingel 40", "Drienerlolaan 5"}
			for i, a := range addrs {
				tids = append(tids, insertPerson(t, ts, loc, int64(i), fmt.Sprintf("p%d", i), a))
			}
			// Degrade half of them.
			degradeOnce(t, ts, loc, tids[0], 0, 1)
			degradeOnce(t, ts, loc, tids[1], 0, 1)

			all := 0
			if err := ts.Scan(func(Tuple) bool { all++; return true }); err != nil {
				t.Fatal(err)
			}
			if all != 4 {
				t.Fatalf("Scan saw %d", all)
			}
			s0, s1 := 0, 0
			if err := ts.ScanState([]uint8{0}, func(Tuple) bool { s0++; return true }); err != nil {
				t.Fatal(err)
			}
			if err := ts.ScanState([]uint8{1}, func(tp Tuple) bool {
				if tp.States[0] != 1 {
					t.Errorf("state filter leaked %v", tp.States)
				}
				s1++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if s0 != 2 || s1 != 2 {
				t.Fatalf("state scans: s0=%d s1=%d", s0, s1)
			}
			// Early stop.
			n := 0
			ts.Scan(func(Tuple) bool { n++; return false })
			if n != 1 {
				t.Fatalf("early stop saw %d", n)
			}
			// Scan of a state with no tuples.
			if err := ts.ScanState([]uint8{3}, func(Tuple) bool { t.Fatal("unexpected"); return true }); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestManyTuplesMultiPage(t *testing.T) {
	_, tbl, loc := personFixture(t, catalog.LayoutMove)
	m := NewManager(NewMemStore())
	ts := m.Table(tbl)
	const n = 500
	name := strings.Repeat("n", 40)
	for i := 0; i < n; i++ {
		insertPerson(t, ts, loc, int64(i), name, "Dam 1")
	}
	st := ts.Stats()
	if st.Tuples != n {
		t.Fatalf("tuples=%d", st.Tuples)
	}
	if st.Pages < 5 {
		t.Fatalf("expected multiple pages, got %d", st.Pages)
	}
	count := 0
	ts.Scan(func(Tuple) bool { count++; return true })
	if count != n {
		t.Fatalf("scan=%d", count)
	}
}

func TestPageRecyclingAfterMassDelete(t *testing.T) {
	_, tbl, loc := personFixture(t, catalog.LayoutMove)
	store := NewMemStore()
	m := NewManager(store)
	ts := m.Table(tbl)
	var tids []TupleID
	for i := 0; i < 300; i++ {
		tids = append(tids, insertPerson(t, ts, loc, int64(i), "pppppppppppppppppppp", "Dam 1"))
	}
	grown := store.NumPages()
	for _, tid := range tids {
		if err := ts.Delete(tid); err != nil {
			t.Fatal(err)
		}
	}
	if ts.Stats().Pages != 0 {
		t.Fatalf("pages not recycled: %+v", ts.Stats())
	}
	// New inserts reuse freed pages instead of growing the store.
	for i := 0; i < 300; i++ {
		insertPerson(t, ts, loc, int64(i), "qqqqqqqqqqqqqqqqqqqq", "Dam 1")
	}
	if store.NumPages() != grown {
		t.Fatalf("store grew from %d to %d pages despite free list", grown, store.NumPages())
	}
}

func TestDropTableScrubs(t *testing.T) {
	_, tbl, loc := personFixture(t, catalog.LayoutMove)
	store := NewMemStore()
	m := NewManager(store)
	ts := m.Table(tbl)
	insertPerson(t, ts, loc, 1, "dropme-sentinel", "Dam 1")
	if err := m.DropTable(tbl.ID); err != nil {
		t.Fatal(err)
	}
	if rawContains(t, store, "dropme-sentinel") {
		t.Fatal("dropped table bytes survive")
	}
}

func TestRebuildFromFile(t *testing.T) {
	cat, tbl, loc := personFixture(t, catalog.LayoutMove)
	path := filepath.Join(t.TempDir(), "pages.db")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(fs)
	ts := m.Table(tbl)
	var tids []TupleID
	for i := 0; i < 50; i++ {
		tids = append(tids, insertPerson(t, ts, loc, int64(i), fmt.Sprintf("p%03d", i), "Dam 1"))
	}
	degradeOnce(t, ts, loc, tids[0], 0, 1)
	if err := ts.Delete(tids[1]); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	m2 := NewManager(fs2)
	if err := m2.Rebuild(cat); err != nil {
		t.Fatal(err)
	}
	ts2 := m2.Table(tbl)
	if ts2.Count() != 49 {
		t.Fatalf("rebuilt count=%d want 49", ts2.Count())
	}
	got, err := ts2.Get(tids[0])
	if err != nil || got.States[0] != 1 {
		t.Fatalf("degraded tuple lost: %+v %v", got, err)
	}
	if _, err := ts2.Get(tids[1]); err == nil {
		t.Fatal("deleted tuple resurrected")
	}
	// Fresh ids continue beyond the rebuilt maximum.
	newID, err := ts2.Insert(got.Row, []uint8{1}, vclock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if newID <= tids[len(tids)-1] {
		t.Fatalf("id %d not beyond %d", newID, tids[len(tids)-1])
	}
}

func TestRebuildFreesOrphanPages(t *testing.T) {
	cat, tbl, loc := personFixture(t, catalog.LayoutMove)
	store := NewMemStore()
	m := NewManager(store)
	ts := m.Table(tbl)
	insertPerson(t, ts, loc, 1, "orphan-sentinel", "Dam 1")
	// Rebuild against an empty catalog: the table is unknown, its pages
	// must be scrubbed and freed.
	if err := m.Rebuild(catalog.New()); err != nil {
		t.Fatal(err)
	}
	if rawContains(t, store, "orphan-sentinel") {
		t.Fatal("orphan page bytes survive rebuild")
	}
	_ = cat
	_ = tbl
	_ = loc
}

// Property: a random sequence of inserts/deletes/degrades agrees with a
// map-based model, and the store never leaks deleted payloads.
func TestQuickTableModel(t *testing.T) {
	_, tbl, loc := personFixture(t, catalog.LayoutMove)
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(func(ops []uint16) bool {
		store := NewMemStore()
		ts := NewManager(store).Table(tbl)
		model := map[TupleID]uint8{} // id -> state
		var ids []TupleID
		addrs := []string{"Dam 1", "Museumplein 6", "Coolsingel 40"}
		for _, op := range ops {
			switch op % 3 {
			case 0: // insert
				stored, _ := loc.ResolveInsert(value.Text(addrs[int(op)%len(addrs)]))
				tid, err := ts.Insert([]value.Value{value.Int(int64(op)), value.Text("n"), stored},
					[]uint8{0}, vclock.Epoch.Add(time.Duration(op)))
				if err != nil {
					return false
				}
				model[tid] = 0
				ids = append(ids, tid)
			case 1: // delete random known id
				if len(ids) == 0 {
					continue
				}
				tid := ids[int(op)%len(ids)]
				if err := ts.Delete(tid); err != nil {
					return false
				}
				delete(model, tid)
			case 2: // degrade one step if possible
				if len(ids) == 0 {
					continue
				}
				tid := ids[int(op)%len(ids)]
				st, ok := model[tid]
				if !ok || st >= 3 {
					continue
				}
				tup, err := ts.Get(tid)
				if err != nil {
					return false
				}
				next, err := loc.Degrade(tup.Row[2], int(st), int(st)+1)
				if err != nil {
					return false
				}
				if err := ts.DegradeAttr(tid, 0, next, st+1); err != nil {
					return false
				}
				model[tid] = st + 1
			}
		}
		if ts.Count() != len(model) {
			return false
		}
		for tid, st := range model {
			got, err := ts.Get(tid)
			if err != nil || got.States[0] != st {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}
