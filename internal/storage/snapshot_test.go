package storage

import (
	"errors"
	"testing"
	"time"

	"instantdb/internal/catalog"
	"instantdb/internal/value"
	"instantdb/internal/vclock"
)

// snapTable builds an in-memory store with stable columns and one
// degradable column over the Figure 1/2 fixture.
func snapTable(t *testing.T) (*Manager, *TableStore) {
	t.Helper()
	_, tbl, _ := personFixture(t, catalog.LayoutMove)
	mgr := NewManager(NewMemStore())
	return mgr, mgr.Table(tbl)
}

// snapInsert stores a row with the degradable column's stored form given
// directly (tests drive states by hand).
func snapInsert(t *testing.T, ts *TableStore, id int64, who, place string) TupleID {
	t.Helper()
	tid := ts.ReserveID()
	err := ts.InsertWithID(tid, []value.Value{value.Int(id), value.Text(who), value.Text(place)},
		[]uint8{0}, vclock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	return tid
}

func TestSnapshotGetVisibility(t *testing.T) {
	mgr, ts := snapTable(t)

	mgr.SetStampEpoch(1, 0)
	a := snapInsert(t, ts, 1, "alice", "Dam 1")

	// A snapshot taken before the insert's epoch does not see it.
	if _, err := ts.SnapshotGet(a, 0); !errors.Is(err, ErrNoTuple) {
		t.Fatalf("pre-insert snapshot: got err %v, want ErrNoTuple", err)
	}
	got, err := ts.SnapshotGet(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Row[1].Text() != "alice" {
		t.Fatalf("snapshot 1 sees %q, want alice", got.Row[1].Text())
	}

	// A stable update at epoch 2 keeps the old image for snapshot 1.
	mgr.SetStampEpoch(2, 0)
	if err := ts.UpdateStable(a, 1, value.Text("bob")); err != nil {
		t.Fatal(err)
	}
	old, err := ts.SnapshotGet(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if old.Row[1].Text() != "alice" {
		t.Fatalf("snapshot 1 after update sees %q, want alice", old.Row[1].Text())
	}
	cur, err := ts.SnapshotGet(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Row[1].Text() != "bob" {
		t.Fatalf("snapshot 2 sees %q, want bob", cur.Row[1].Text())
	}
}

func TestDegradeScrubsVersionChain(t *testing.T) {
	mgr, ts := snapTable(t)
	mgr.SetStampEpoch(1, 0)
	a := snapInsert(t, ts, 1, "alice", "Dam 1")
	mgr.SetStampEpoch(2, 0)
	if err := ts.UpdateStable(a, 1, value.Text("bob")); err != nil {
		t.Fatal(err)
	}
	if st := ts.Stats(); st.Versions != 1 {
		t.Fatalf("retained %d versions, want 1", st.Versions)
	}

	// The LCP transition overwrites the degradable column everywhere:
	// current image and every retained version, regardless of the open
	// snapshot at epoch 1.
	if err := ts.DegradeAttr(a, 0, value.Text("Amsterdam"), 1); err != nil {
		t.Fatal(err)
	}
	old, err := ts.SnapshotGet(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if old.Row[1].Text() != "alice" {
		t.Fatalf("snapshot 1 stable column = %q, want alice (version retained)", old.Row[1].Text())
	}
	if old.Row[2].Text() != "Amsterdam" || old.States[0] != 1 {
		t.Fatalf("snapshot 1 degradable column = %q state %d, want Amsterdam state 1 (scrubbed at deadline)",
			old.Row[2].Text(), old.States[0])
	}
}

func TestDeleteScrubsVersionChain(t *testing.T) {
	mgr, ts := snapTable(t)
	mgr.SetStampEpoch(1, 0)
	a := snapInsert(t, ts, 1, "alice", "Dam 1")
	mgr.SetStampEpoch(2, 0)
	if err := ts.UpdateStable(a, 1, value.Text("bob")); err != nil {
		t.Fatal(err)
	}
	if err := ts.Delete(a); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.SnapshotGet(a, 1); !errors.Is(err, ErrNoTuple) {
		t.Fatalf("deleted tuple visible at old snapshot: err = %v", err)
	}
	if st := ts.Stats(); st.Versions != 0 {
		t.Fatalf("delete left %d versions behind", st.Versions)
	}
}

func TestVersionChainBoundAndMerge(t *testing.T) {
	mgr, ts := snapTable(t)
	mgr.SetStampEpoch(1, 0)
	a := snapInsert(t, ts, 1, "v1", "Dam 1")
	for e := uint64(2); e <= 10; e++ {
		mgr.SetStampEpoch(e, 0)
		if err := ts.UpdateStable(a, 1, value.Text("v"+string(rune('0'+e)))); err != nil {
			t.Fatal(err)
		}
	}
	if st := ts.Stats(); st.Versions != MaxTupleVersions {
		t.Fatalf("chain length %d, want cap %d", st.Versions, MaxTupleVersions)
	}
	// A snapshot older than the oldest retained version still resolves
	// (birth epochs merge downward on truncation): it reads the oldest
	// surviving image — bounded staleness, never a miss.
	got, err := ts.SnapshotGet(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Row[1].Text() == "" {
		t.Fatal("truncated snapshot read returned empty image")
	}
}

func TestHasVisibleHistory(t *testing.T) {
	mgr, ts := snapTable(t)
	mgr.SetStampEpoch(1, 0)
	a := snapInsert(t, ts, 1, "alice", "Dam 1")
	if ts.HasVisibleHistory(1) {
		t.Fatal("fresh table claims visible history")
	}
	mgr.SetStampEpoch(5, 0)
	if err := ts.UpdateStable(a, 1, value.Text("bob")); err != nil {
		t.Fatal(err)
	}
	// Snapshots older than the supersede may need chain images;
	// snapshots at or past it provably read current images only — so
	// stable-column indexes serve them even while the chain lingers.
	if !ts.HasVisibleHistory(4) {
		t.Fatal("pre-supersede snapshot not flagged")
	}
	if ts.HasVisibleHistory(5) {
		t.Fatal("snapshot at the supersede epoch flagged although it sees the current image")
	}
	if ts.HasVisibleHistory(9) {
		t.Fatal("later snapshot flagged although chains cannot diverge for it")
	}
}

func TestVersionPruneByLowWater(t *testing.T) {
	mgr, ts := snapTable(t)
	mgr.SetStampEpoch(1, 0)
	a := snapInsert(t, ts, 1, "v1", "Dam 1")
	mgr.SetStampEpoch(2, 0)
	if err := ts.UpdateStable(a, 1, value.Text("v2")); err != nil {
		t.Fatal(err)
	}
	// No snapshot older than epoch 5 is open: the v1 image (died at 2)
	// is unreachable and the next push prunes it.
	mgr.SetStampEpoch(6, 5)
	if err := ts.UpdateStable(a, 1, value.Text("v3")); err != nil {
		t.Fatal(err)
	}
	if st := ts.Stats(); st.Versions != 1 {
		t.Fatalf("retained %d versions after prune, want 1 (only the v2 image)", st.Versions)
	}
}

func TestSnapshotScanSeesConsistentSet(t *testing.T) {
	mgr, ts := snapTable(t)
	mgr.SetStampEpoch(1, 0)
	snapInsert(t, ts, 1, "alice", "Dam 1")
	snapInsert(t, ts, 2, "bob", "Coolsingel 40")
	mgr.SetStampEpoch(2, 0)
	snapInsert(t, ts, 3, "carol", "Museumplein 6")

	count := func(snap uint64) int {
		n := 0
		if err := ts.SnapshotScan(snap, func(Tuple) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if got := count(1); got != 2 {
		t.Fatalf("snapshot 1 scan sees %d tuples, want 2", got)
	}
	if got := count(2); got != 3 {
		t.Fatalf("snapshot 2 scan sees %d tuples, want 3", got)
	}
}

// TestBlockedScanDoesNotDelayDegrader is the storage-level half of the
// tentpole guarantee: a SnapshotScan whose consumer is wedged mid-scan
// holds no table lock, so a degradation rewrite on the same table
// completes while the scan is still blocked.
func TestBlockedScanDoesNotDelayDegrader(t *testing.T) {
	mgr, ts := snapTable(t)
	mgr.SetStampEpoch(1, 0)
	a := snapInsert(t, ts, 1, "alice", "Dam 1")
	snapInsert(t, ts, 2, "bob", "Coolsingel 40")

	entered := make(chan struct{})
	release := make(chan struct{})
	scanDone := make(chan error, 1)
	go func() {
		first := true
		scanDone <- ts.SnapshotScan(1, func(Tuple) bool {
			if first {
				first = false
				close(entered)
				<-release // wedge the consumer mid-scan
			}
			return true
		})
	}()

	<-entered
	// The scan is parked inside its callback. The transition must not
	// wait for it.
	degradeDone := make(chan error, 1)
	go func() { degradeDone <- ts.DegradeAttr(a, 0, value.Text("Amsterdam"), 1) }()
	select {
	case err := <-degradeDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("degradation transition blocked behind a wedged scan")
	}
	close(release)
	if err := <-scanDone; err != nil {
		t.Fatal(err)
	}

	// And the committed transition is what any later read observes.
	got, err := ts.SnapshotGet(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Row[2].Text() != "Amsterdam" {
		t.Fatalf("post-transition read = %q, want Amsterdam", got.Row[2].Text())
	}
}
