// Package storage implements InstantDB's degradation-aware storage
// engine: a raw page store (memory- or file-backed), slotted heap pages,
// and per-table tuple stores partitioned by tuple state (the paper's STk
// subsets). Its distinguishing requirement is *physical
// non-recoverability*: every byte of a tuple payload that leaves a slot —
// through deletion, degradation rewrite, or relocation — is zero-filled
// before the space is reused or abandoned, so a forensic scan of the raw
// store never recovers an expired accuracy state (paper §III, citing
// Stahlberg et al. on unintended retention).
//
// For the engine's lock-free snapshot reads, each TableStore also keeps
// a bounded in-memory version chain per tuple (SnapshotGet,
// SnapshotScan): stable-column updates retain the superseded image for
// open snapshots, while degradation transitions scrub the expired
// accuracy state out of every retained version at their LCP deadline
// and deletions drop the whole chain — version lifetime is bounded by
// deadlines and the MaxTupleVersions cap, never extended by readers.
package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// PageSize is the fixed size of every page in bytes.
const PageSize = 4096

// PageID identifies a page within a Store. Page 0 is valid.
type PageID uint32

// ErrPageRange is returned for out-of-range page accesses.
var ErrPageRange = errors.New("storage: page id out of range")

// Store is raw page I/O. Implementations must zero-fill freed pages
// (scrub-on-free) and expose every raw byte to ForEachPage so the
// forensic scanner can audit them. Implementations are safe for
// concurrent use.
type Store interface {
	// ReadPage copies page id into buf (len PageSize).
	ReadPage(id PageID, buf []byte) error
	// WritePage overwrites page id with data (len PageSize).
	WritePage(id PageID, data []byte) error
	// Allocate extends the store by one zeroed page.
	Allocate() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() uint32
	// ForEachPage calls fn with every page's raw content, in id order.
	// The slice is only valid during the call.
	ForEachPage(fn func(id PageID, data []byte) error) error
	// Sync makes previous writes durable (no-op for memory stores).
	Sync() error
	// Close releases resources. The store is unusable afterwards.
	Close() error
}

// MemStore is an in-memory Store used by tests, benchmarks and
// ephemeral databases.
type MemStore struct {
	mu    sync.RWMutex
	pages [][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// ReadPage implements Store.
func (m *MemStore) ReadPage(id PageID, buf []byte) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: read %d of %d", ErrPageRange, id, len(m.pages))
	}
	copy(buf, m.pages[id])
	return nil
}

// WritePage implements Store.
func (m *MemStore) WritePage(id PageID, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: write %d of %d", ErrPageRange, id, len(m.pages))
	}
	copy(m.pages[id], data)
	return nil
}

// Allocate implements Store.
func (m *MemStore) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = append(m.pages, make([]byte, PageSize))
	return PageID(len(m.pages) - 1), nil
}

// NumPages implements Store.
func (m *MemStore) NumPages() uint32 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return uint32(len(m.pages))
}

// ForEachPage implements Store.
func (m *MemStore) ForEachPage(fn func(id PageID, data []byte) error) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for i, p := range m.pages {
		if err := fn(PageID(i), p); err != nil {
			return err
		}
	}
	return nil
}

// Sync implements Store (no-op).
func (m *MemStore) Sync() error { return nil }

// Close implements Store.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = nil
	return nil
}

// FileStore is a file-backed Store. Writes go to the OS immediately but
// are only durable after Sync; InstantDB's durability comes from the WAL,
// with page files synced at checkpoints.
type FileStore struct {
	mu   sync.Mutex
	f    *os.File
	n    uint32 // allocated pages
	path string
}

// OpenFileStore opens (or creates) the page file at path. An existing
// file must be a whole number of pages.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s: size %d is not page aligned", path, st.Size())
	}
	return &FileStore{f: f, n: uint32(st.Size() / PageSize), path: path}, nil
}

// Path returns the backing file path.
func (s *FileStore) Path() string { return s.path }

// ReadPage implements Store.
func (s *FileStore) ReadPage(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if uint32(id) >= s.n {
		return fmt.Errorf("%w: read %d of %d", ErrPageRange, id, s.n)
	}
	_, err := s.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	if err != nil && err != io.EOF {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// WritePage implements Store.
func (s *FileStore) WritePage(id PageID, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if uint32(id) >= s.n {
		return fmt.Errorf("%w: write %d of %d", ErrPageRange, id, s.n)
	}
	if _, err := s.f.WriteAt(data[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// Allocate implements Store.
func (s *FileStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := PageID(s.n)
	zero := make([]byte, PageSize)
	if _, err := s.f.WriteAt(zero, int64(id)*PageSize); err != nil {
		return 0, fmt.Errorf("storage: allocate page %d: %w", id, err)
	}
	s.n++
	return id, nil
}

// NumPages implements Store.
func (s *FileStore) NumPages() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// ForEachPage implements Store.
func (s *FileStore) ForEachPage(fn func(id PageID, data []byte) error) error {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	buf := make([]byte, PageSize)
	for id := PageID(0); id < PageID(n); id++ {
		if err := s.ReadPage(id, buf); err != nil {
			return err
		}
		if err := fn(id, buf); err != nil {
			return err
		}
	}
	return nil
}

// Sync implements Store.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync()
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

var (
	_ Store = (*MemStore)(nil)
	_ Store = (*FileStore)(nil)
)
