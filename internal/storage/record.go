package storage

import (
	"encoding/binary"
	"fmt"
	"time"

	"instantdb/internal/value"
)

// TupleID is the stable logical identifier of a tuple within its table.
// It survives degradation moves between state segments; secondary indexes
// reference tuples by TupleID, never by physical location.
type TupleID uint64

// RID is a physical record location.
type RID struct {
	Page PageID
	Slot uint16
}

// StateErased marks a degradable attribute that passed its horizon: the
// stored value is NULL and the original is physically gone.
const StateErased = 0xFF

// StateAdvances reports whether moving a degradable attribute from cur
// to next goes strictly down the generalization ladder (states increase
// toward coarser accuracy; StateErased is terminal). Transitions that do
// not advance — re-applying the transition the attribute already made,
// or an older transition arriving after a newer one (replication
// reconciliation) — must be no-ops: accuracy is never resurrected.
func StateAdvances(cur, next uint8) bool {
	if cur == StateErased {
		return false
	}
	if next == StateErased {
		return true
	}
	return next > cur
}

// Tuple is a materialized record: the stored (not rendered) forms of all
// columns plus degradation metadata.
type Tuple struct {
	ID TupleID
	// InsertedAt anchors every LCP deadline of this tuple.
	InsertedAt time.Time
	// States holds the LCP state index of each degradable column (in
	// catalog DegradableColumns order); StateErased past the horizon.
	States []uint8
	// Row holds the stored form of every column in declaration order.
	// Degradable columns hold their domain's stored representation at
	// the current state's level.
	Row []value.Value
}

// Record layout: tupleID u64 | insertNano i64 | nDeg u8 | states nDeg |
// EncodeRow(row). Self-delimiting, so in-place shrink with zero-fill is
// safe.
func encodeRecord(dst []byte, id TupleID, at time.Time, states []uint8, row []value.Value) []byte {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(id))
	binary.LittleEndian.PutUint64(b[8:], uint64(at.UTC().UnixNano()))
	dst = append(dst, b[:]...)
	dst = append(dst, byte(len(states)))
	dst = append(dst, states...)
	return value.EncodeRow(dst, row)
}

func decodeRecord(src []byte) (Tuple, error) {
	if len(src) < 17 {
		return Tuple{}, fmt.Errorf("storage: record too short (%d bytes)", len(src))
	}
	var t Tuple
	t.ID = TupleID(binary.LittleEndian.Uint64(src[0:]))
	t.InsertedAt = time.Unix(0, int64(binary.LittleEndian.Uint64(src[8:]))).UTC()
	n := int(src[16])
	if len(src) < 17+n {
		return Tuple{}, fmt.Errorf("storage: record truncated in state vector")
	}
	t.States = append([]uint8(nil), src[17:17+n]...)
	row, _, err := value.DecodeRow(src[17+n:])
	if err != nil {
		return Tuple{}, fmt.Errorf("storage: record row: %w", err)
	}
	t.Row = row
	return t, nil
}

// stateKey packs a state vector into a comparable key. At most
// catalog.MaxDegradableColumns (8) states fit.
func stateKey(states []uint8) uint64 {
	var k uint64
	for i, s := range states {
		k |= uint64(s) << (8 * i)
	}
	return k
}
