package degrade

import (
	"fmt"
	"testing"
	"time"

	"instantdb/internal/catalog"
	"instantdb/internal/gentree"
	"instantdb/internal/lcp"
	"instantdb/internal/storage"
	"instantdb/internal/txn"
	"instantdb/internal/value"
	"instantdb/internal/vclock"
	"instantdb/internal/wal"
)

// applier applies records straight to storage — the minimal Committer.
func applier(cat *catalog.Catalog, mgr *storage.Manager) Committer {
	return func(recs []*wal.Record) error {
		for _, r := range recs {
			tbl, err := cat.TableByID(r.Table)
			if err != nil {
				return err
			}
			ts := mgr.Table(tbl)
			switch r.Type {
			case wal.RecDelete:
				if err := ts.Delete(r.Tuple); err != nil {
					return err
				}
			case wal.RecDegrade:
				if err := ts.DegradeAttr(r.Tuple, int(r.DegPos), r.NewStored, r.NewState); err != nil {
					return err
				}
			default:
				return fmt.Errorf("unexpected record type %d", r.Type)
			}
		}
		return nil
	}
}

type fixture struct {
	cat   *catalog.Catalog
	mgr   *storage.Manager
	tbl   *catalog.Table
	ts    *storage.TableStore
	loc   *gentree.Tree
	clock *vclock.Simulated
	locks *txn.LockManager
	eng   *Engine
}

// newFixture builds a person table under the Figure 2 policy and an
// engine over a simulated clock.
func newFixture(t *testing.T, opts Options, build func(loc *gentree.Tree) *lcp.Policy) *fixture {
	t.Helper()
	cat := catalog.New()
	loc := gentree.Figure1Locations()
	if err := cat.AddDomain(loc); err != nil {
		t.Fatal(err)
	}
	pol := build(loc)
	if err := cat.AddPolicy(pol); err != nil {
		t.Fatal(err)
	}
	tbl, err := cat.CreateTable("person", []catalog.Column{
		{Name: "id", Kind: value.KindInt},
		{Name: "location", Kind: value.KindText, Degradable: true, Domain: loc, Policy: pol},
	}, 0, catalog.LayoutMove)
	if err != nil {
		t.Fatal(err)
	}
	mgr := storage.NewManager(storage.NewMemStore())
	clock := vclock.NewSimulated(vclock.Epoch)
	locks := txn.NewLockManager(20 * time.Millisecond)
	ids := &txn.IDSource{}
	eng := New(clock, cat, mgr, locks, ids, applier(cat, mgr), nil, opts)
	return &fixture{cat: cat, mgr: mgr, tbl: tbl, ts: mgr.Table(tbl), loc: loc,
		clock: clock, locks: locks, eng: eng}
}

func figure2Policy(loc *gentree.Tree) *lcp.Policy { return lcp.Figure2(loc) }

func (f *fixture) insert(t *testing.T, id int64, addr string) storage.TupleID {
	t.Helper()
	stored, err := f.loc.ResolveInsert(value.Text(addr))
	if err != nil {
		t.Fatal(err)
	}
	tid, err := f.ts.Insert([]value.Value{value.Int(id), stored}, []uint8{0}, f.clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	f.eng.OnInsert(f.tbl, tid, f.clock.Now())
	return tid
}

func (f *fixture) stateOf(t *testing.T, tid storage.TupleID) (uint8, bool) {
	t.Helper()
	tup, err := f.ts.Get(tid)
	if err != nil {
		return 0, false
	}
	return tup.States[0], true
}

func TestFigure2LifetimeOnSimClock(t *testing.T) {
	f := newFixture(t, Options{}, figure2Policy)
	tid := f.insert(t, 1, "45 avenue des Etats-Unis")

	// At insert the tuple is accurate; the 0-minute state expires on the
	// first tick.
	if n, err := f.eng.Tick(); err != nil || n != 1 {
		t.Fatalf("tick0: n=%d err=%v", n, err)
	}
	if st, ok := f.stateOf(t, tid); !ok || st != 1 {
		t.Fatalf("state=%d want 1 (city)", st)
	}
	// 1 hour: city → region.
	f.clock.Advance(time.Hour)
	if n, _ := f.eng.Tick(); n != 1 {
		t.Fatal("city→region did not fire")
	}
	if st, _ := f.stateOf(t, tid); st != 2 {
		t.Fatalf("state=%d want 2", st)
	}
	// Check the stored value renders as the region.
	tup, _ := f.ts.Get(tid)
	r, err := f.loc.Render(tup.Row[1], 2)
	if err != nil || r.Text() != "Ile-de-France" {
		t.Fatalf("render: %v %v", r, err)
	}
	// +1 day: region → country.
	f.clock.Advance(24 * time.Hour)
	if n, _ := f.eng.Tick(); n != 1 {
		t.Fatal("region→country did not fire")
	}
	// +1 month: terminal — attribute erased and tuple deleted.
	f.clock.Advance(30 * 24 * time.Hour)
	if n, _ := f.eng.Tick(); n < 1 {
		t.Fatal("terminal transitions did not fire")
	}
	if _, ok := f.stateOf(t, tid); ok {
		t.Fatal("tuple survived its Figure 2 horizon")
	}
	st := f.eng.Stats()
	// 3 degradations + the terminal erase at the horizon, then deletion.
	if st.Transitions != 4 || st.Deletions != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Pending != 0 {
		t.Fatalf("pending=%d want 0", st.Pending)
	}
}

func TestNoEarlyFiring(t *testing.T) {
	f := newFixture(t, Options{}, func(loc *gentree.Tree) *lcp.Policy {
		return lcp.NewBuilder("slow", loc).
			Hold(0, time.Hour).Hold(1, time.Hour).ThenSuppress().MustBuild()
	})
	tid := f.insert(t, 1, "Dam 1")
	if n, _ := f.eng.Tick(); n != 0 {
		t.Fatal("transition fired before deadline")
	}
	f.clock.Advance(59 * time.Minute)
	if n, _ := f.eng.Tick(); n != 0 {
		t.Fatal("transition fired 1 minute early")
	}
	f.clock.Advance(time.Minute)
	if n, _ := f.eng.Tick(); n != 1 {
		t.Fatal("transition missed its deadline")
	}
	if st, _ := f.stateOf(t, tid); st != 1 {
		t.Fatalf("state=%d", st)
	}
	// Suppression leaves the tuple, erases the attribute.
	f.clock.Advance(time.Hour)
	if n, _ := f.eng.Tick(); n != 1 {
		t.Fatal("suppression missed")
	}
	tup, err := f.ts.Get(tid)
	if err != nil {
		t.Fatal("suppress must keep the tuple")
	}
	if tup.States[0] != storage.StateErased || !tup.Row[1].IsNull() {
		t.Fatalf("attr not erased: %+v", tup)
	}
}

func TestBatchingAndFIFO(t *testing.T) {
	f := newFixture(t, Options{BatchSize: 10}, func(loc *gentree.Tree) *lcp.Policy {
		return lcp.NewBuilder("p", loc).Hold(0, time.Hour).Hold(3, time.Hour).ThenRemain().MustBuild()
	})
	for i := 0; i < 35; i++ {
		f.insert(t, int64(i), "Dam 1")
		f.clock.Advance(time.Second)
	}
	f.clock.Advance(time.Hour)
	n, err := f.eng.Tick()
	if err != nil {
		t.Fatal(err)
	}
	// Tick loops batches until drained: all 35 fire.
	if n != 35 {
		t.Fatalf("tick degraded %d want 35", n)
	}
	st := f.eng.Stats()
	if st.Batches < 4 {
		t.Fatalf("batches=%d want >=4 given batch size 10", st.Batches)
	}
	// Remain policy: no further transitions ever.
	f.clock.Advance(1000 * time.Hour)
	if n, _ := f.eng.Tick(); n != 0 {
		t.Fatal("Remain policy fired a terminal transition")
	}
	if got := f.ts.Count(); got != 35 {
		t.Fatalf("tuples=%d", got)
	}
}

func TestLagMetrics(t *testing.T) {
	f := newFixture(t, Options{}, func(loc *gentree.Tree) *lcp.Policy {
		return lcp.NewBuilder("p", loc).Hold(0, time.Hour).Hold(1, time.Hour).ThenSuppress().MustBuild()
	})
	f.insert(t, 1, "Dam 1")
	// Tick 30 minutes late.
	f.clock.Advance(90 * time.Minute)
	f.eng.Tick()
	st := f.eng.Stats()
	if st.MaxLag < 30*time.Minute || st.MaxLag > 31*time.Minute {
		t.Fatalf("MaxLag=%v want ~30m", st.MaxLag)
	}
}

func TestLockedRowSkippedThenRetried(t *testing.T) {
	f := newFixture(t, Options{RecheckInterval: time.Millisecond}, func(loc *gentree.Tree) *lcp.Policy {
		return lcp.NewBuilder("p", loc).Hold(0, time.Hour).Hold(1, 1000*time.Hour).ThenSuppress().MustBuild()
	})
	tid := f.insert(t, 1, "Dam 1")
	// A reader holds a row S lock.
	reader := txn.ID(99999)
	if err := f.locks.Acquire(reader, txn.RowRes(f.tbl.ID, tid), txn.LockS); err != nil {
		t.Fatal(err)
	}
	f.clock.Advance(2 * time.Hour)
	if n, _ := f.eng.Tick(); n != 0 {
		t.Fatal("degraded a locked row")
	}
	st := f.eng.Stats()
	if st.LockSkips == 0 {
		t.Fatal("lock skip not counted")
	}
	if st.Pending != 1 {
		t.Fatalf("pending=%d want 1", st.Pending)
	}
	// Reader commits; next tick succeeds.
	f.locks.ReleaseAll(reader)
	f.clock.Advance(time.Second)
	if n, _ := f.eng.Tick(); n != 1 {
		t.Fatal("retry did not degrade")
	}
	if got, _ := f.stateOf(t, tid); got != 1 {
		t.Fatalf("state=%d", got)
	}
}

func TestEventTrigger(t *testing.T) {
	f := newFixture(t, Options{}, func(loc *gentree.Tree) *lcp.Policy {
		return lcp.NewBuilder("p", loc).
			HoldUntilEvent(0, 100*time.Hour, "consent-withdrawn").
			Hold(1, time.Hour).ThenSuppress().MustBuild()
	})
	tid := f.insert(t, 1, "Dam 1")
	// Long before the time deadline, nothing fires.
	f.clock.Advance(time.Hour)
	if n, _ := f.eng.Tick(); n != 0 {
		t.Fatal("event state fired early")
	}
	// The event makes it due immediately.
	f.eng.FireEvent("consent-withdrawn")
	if n, _ := f.eng.Tick(); n != 1 {
		t.Fatal("event did not trigger transition")
	}
	if st, _ := f.stateOf(t, tid); st != 1 {
		t.Fatalf("state=%d", st)
	}
	// Unknown events are ignored.
	f.eng.FireEvent("nothing-waits-on-this")
	if n, _ := f.eng.Tick(); n != 0 {
		t.Fatal("spurious transition")
	}
}

func TestEventDeadlineStillApplies(t *testing.T) {
	// Event states also expire at their retention deadline without the
	// event.
	f := newFixture(t, Options{}, func(loc *gentree.Tree) *lcp.Policy {
		return lcp.NewBuilder("p", loc).
			HoldUntilEvent(0, time.Hour, "ev").
			Hold(1, time.Hour).ThenSuppress().MustBuild()
	})
	tid := f.insert(t, 1, "Dam 1")
	f.clock.Advance(time.Hour)
	if n, _ := f.eng.Tick(); n != 1 {
		t.Fatal("time deadline ignored for event state")
	}
	if st, _ := f.stateOf(t, tid); st != 1 {
		t.Fatalf("state=%d", st)
	}
}

func TestPredicateGate(t *testing.T) {
	f := newFixture(t, Options{RecheckInterval: time.Minute}, func(loc *gentree.Tree) *lcp.Policy {
		return lcp.NewBuilder("p", loc).
			HoldIf(0, time.Hour, "case-closed").
			Hold(1, 1000*time.Hour).ThenSuppress().MustBuild()
	})
	closed := false
	f.eng.RegisterPredicate("case-closed", func(storage.Tuple) bool { return closed })
	tid := f.insert(t, 1, "Dam 1")
	f.clock.Advance(2 * time.Hour)
	if n, _ := f.eng.Tick(); n != 0 {
		t.Fatal("gated transition fired")
	}
	if f.eng.Stats().PredicateHold == 0 {
		t.Fatal("predicate hold not counted")
	}
	// Once the predicate holds, the retry fires.
	closed = true
	f.clock.Advance(time.Minute)
	if n, _ := f.eng.Tick(); n != 1 {
		t.Fatal("gated transition never fired")
	}
	if st, _ := f.stateOf(t, tid); st != 1 {
		t.Fatalf("state=%d", st)
	}
}

func TestReseedRebuildsQueues(t *testing.T) {
	f := newFixture(t, Options{}, figure2Policy)
	tid := f.insert(t, 1, "Dam 1")
	f.eng.Tick() // 0-minute state expires: now at city (state 1)
	f.clock.Advance(30 * time.Minute)

	// A fresh engine reseeded from storage must pick up where the old
	// one left off.
	ids := &txn.IDSource{}
	eng2 := New(f.clock, f.cat, f.mgr, f.locks, ids, applier(f.cat, f.mgr), nil, Options{})
	if err := eng2.Reseed(); err != nil {
		t.Fatal(err)
	}
	if eng2.Stats().Pending == 0 {
		t.Fatal("reseed found nothing")
	}
	// 30 more minutes: the 1-hour city deadline passes.
	f.clock.Advance(30 * time.Minute)
	if n, _ := eng2.Tick(); n != 1 {
		t.Fatal("reseeded engine missed the deadline")
	}
	if st, _ := f.stateOf(t, tid); st != 2 {
		t.Fatalf("state=%d want 2", st)
	}
	// Full horizon: deletion also rescheduled.
	f.clock.Advance(40 * 24 * time.Hour)
	eng2.Tick()
	if _, ok := f.stateOf(t, tid); ok {
		t.Fatal("reseeded engine lost the deletion deadline")
	}
}

func TestNextDeadline(t *testing.T) {
	f := newFixture(t, Options{}, func(loc *gentree.Tree) *lcp.Policy {
		return lcp.NewBuilder("p", loc).Hold(0, time.Hour).Hold(1, time.Hour).ThenSuppress().MustBuild()
	})
	if _, ok := f.eng.NextDeadline(); ok {
		t.Fatal("empty engine has no deadline")
	}
	f.insert(t, 1, "Dam 1")
	d, ok := f.eng.NextDeadline()
	if !ok || !d.Equal(vclock.Epoch.Add(time.Hour)) {
		t.Fatalf("NextDeadline=(%v,%v)", d, ok)
	}
	// Drive the simulation by deadlines only.
	steps := 0
	for {
		d, ok := f.eng.NextDeadline()
		if !ok {
			break
		}
		f.clock.AdvanceTo(d)
		if _, err := f.eng.Tick(); err != nil {
			t.Fatal(err)
		}
		steps++
		if steps > 10 {
			t.Fatal("simulation did not terminate")
		}
	}
	if f.eng.Stats().Transitions != 2 {
		t.Fatalf("transitions=%d", f.eng.Stats().Transitions)
	}
}

func TestRunBackgroundLoop(t *testing.T) {
	f := newFixture(t, Options{}, func(loc *gentree.Tree) *lcp.Policy {
		return lcp.NewBuilder("p", loc).Hold(0, 0).Hold(1, time.Hour).ThenSuppress().MustBuild()
	})
	tid := f.insert(t, 1, "Dam 1")
	f.eng.Run(5 * time.Millisecond)
	defer f.eng.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if st, _ := f.stateOf(t, tid); st == 1 {
			f.eng.Stop()
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background loop never degraded the 0-retention state")
}

func TestStaleTasksSkipped(t *testing.T) {
	// A tuple deleted by the user before its transition fires must be
	// skipped silently.
	f := newFixture(t, Options{}, func(loc *gentree.Tree) *lcp.Policy {
		return lcp.NewBuilder("p", loc).Hold(0, time.Hour).Hold(1, time.Hour).ThenSuppress().MustBuild()
	})
	tid := f.insert(t, 1, "Dam 1")
	if err := f.ts.Delete(tid); err != nil {
		t.Fatal(err)
	}
	f.clock.Advance(2 * time.Hour)
	if n, err := f.eng.Tick(); err != nil || n != 0 {
		t.Fatalf("deleted tuple degraded: n=%d err=%v", n, err)
	}
}
