// Package degrade implements the degradation engine: the component that
// makes LCP transitions actually happen on time (paper §III, "How to
// enforce timely data degradation?"). It keeps, per table and per
// degradable attribute, a FIFO queue of tuples ordered by their next
// transition deadline (insert order equals deadline order under a uniform
// policy), and on every tick executes due transitions in small batches as
// system transactions: X row locks, one WAL commit batch, physical
// rewrite with scrubbing, index maintenance, then log scrubbing (epoch
// key shredding or vacuum) through the Scrubber hook.
//
// Readers holding row locks never block a whole batch: locked tuples are
// skipped and retried on the next tick, trading bounded lag for reader
// latency (experiment B-TXN). Only reads inside explicit read-write
// transactions hold such locks — autocommit SELECTs and read-only
// transactions go through the engine's snapshot path and never delay a
// transition. The snapshot path is also where this engine pins version
// garbage collection to LCP deadlines: a transition's storage apply
// (TableStore.DegradeAttr) scrubs the expired accuracy state from every
// retained tuple version at the tick, regardless of open snapshots, so
// MVCC never extends the life of expired data.
package degrade

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"instantdb/internal/catalog"
	"instantdb/internal/lcp"
	"instantdb/internal/metrics"
	"instantdb/internal/storage"
	"instantdb/internal/trace"
	"instantdb/internal/txn"
	"instantdb/internal/value"
	"instantdb/internal/vclock"
	"instantdb/internal/wal"
)

// Committer persists and applies a batch of system-transaction records.
// The engine layer provides it: WAL append (durable), then storage apply
// and index maintenance — the same path user commits take.
type Committer func(recs []*wal.Record) error

// Scrubber performs log degradation after transitions commit.
type Scrubber interface {
	// AfterTransition runs after a batch moving tuples of tbl's
	// degradable column degPos out of fromState commits. Every tuple
	// inserted before cutoff has passed this transition's deadline, so
	// log material carrying their fromState values may be destroyed.
	AfterTransition(tbl *catalog.Table, degPos int, fromState uint8, cutoff time.Time) error
	// Periodic runs once per tick for time-based maintenance (segment
	// vacuum).
	Periodic(now time.Time) error
}

// NopScrubber performs no log degradation (the leaky baseline).
type NopScrubber struct{}

// AfterTransition implements Scrubber.
func (NopScrubber) AfterTransition(*catalog.Table, int, uint8, time.Time) error { return nil }

// Periodic implements Scrubber.
func (NopScrubber) Periodic(time.Time) error { return nil }

// Predicate gates a predicate-triggered transition (paper §IV).
type Predicate func(storage.Tuple) bool

// Options tunes the engine.
type Options struct {
	// BatchSize bounds the tuples degraded per queue per tick
	// (default 256).
	BatchSize int
	// RecheckInterval delays re-examination of tuples whose predicate
	// gate refused the transition or whose row lock was busy
	// (default 1s).
	RecheckInterval time.Duration
	// LockTimeoutSkip: the engine never waits for row locks; this is
	// fixed behavior, documented here for clarity.
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.RecheckInterval <= 0 {
		o.RecheckInterval = time.Second
	}
	return o
}

// task is one tuple waiting for one transition.
type task struct {
	tid        storage.TupleID
	insertNano int64
	notBefore  int64 // retry gate (lock busy / predicate false)
}

// queueKey identifies a transition queue.
type queueKey struct {
	table uint32
	// attr is the degradable column position, or -1 for the tuple
	// deletion queue.
	attr int
	// state is the LCP state the transition leaves (unused for delete).
	state uint8
}

// transQueue holds the FIFO of tuples awaiting one transition.
type transQueue struct {
	tbl *catalog.Table
	// ageNano is the deadline age of this transition from insert.
	ageNano int64
	// For attribute transitions:
	pol       *lcp.Policy
	fromState int
	toState   int // -1 = erased (terminal suppress/delete of the attr)
	trigger   lcp.TriggerKind
	event     string
	predicate string
	isDelete  bool

	fifo    []task
	retries []task
	// eventFired drains the queue regardless of deadlines.
	eventFired bool
}

// Stats aggregates engine activity. It is a point-in-time snapshot of
// the same atomics the metrics registry reads at collect time —
// production scrapes and tests observe identical numbers.
type Stats struct {
	Transitions   uint64
	Erasures      uint64
	Deletions     uint64
	Batches       uint64
	LockSkips     uint64
	PredicateHold uint64
	// MaxLag and SumLag measure (execution time - deadline): the
	// timeliness of enforcement.
	MaxLag time.Duration
	SumLag time.Duration
	// Pending counts tuples currently enqueued.
	Pending int
}

// counters is the engine's activity bookkeeping: plain atomics so both
// Stats() and collect-time metric callbacks read them without touching
// the queue mutex.
type counters struct {
	transitions   atomic.Uint64
	erasures      atomic.Uint64
	deletions     atomic.Uint64
	batches       atomic.Uint64
	lockSkips     atomic.Uint64
	predicateHold atomic.Uint64
	maxLagNano    atomic.Int64
	sumLagNano    atomic.Int64
}

// Engine schedules and executes LCP transitions.
type Engine struct {
	mu     sync.Mutex
	clock  vclock.Clock
	cat    *catalog.Catalog
	mgr    *storage.Manager
	locks  *txn.LockManager
	ids    *txn.IDSource
	commit Committer
	scrub  Scrubber
	opts   Options

	queues map[queueKey]*transQueue
	preds  map[string]Predicate
	ctr    counters
	// audit is the tamper-evident degradation trail (nil drops events);
	// attached by SetAudit after construction so the engine layer can
	// wire it without recovery replay re-auditing reseeded queues.
	audit *trace.Audit

	stop chan struct{}
	done chan struct{}
}

// New builds an engine. commit must be non-nil; scrub may be nil for no
// log scrubbing.
func New(clock vclock.Clock, cat *catalog.Catalog, mgr *storage.Manager,
	locks *txn.LockManager, ids *txn.IDSource, commit Committer, scrub Scrubber, opts Options) *Engine {
	if scrub == nil {
		scrub = NopScrubber{}
	}
	return &Engine{
		clock:  clock,
		cat:    cat,
		mgr:    mgr,
		locks:  locks,
		ids:    ids,
		commit: commit,
		scrub:  scrub,
		opts:   opts.withDefaults(),
		queues: make(map[queueKey]*transQueue),
		preds:  make(map[string]Predicate),
	}
}

// SetAudit attaches the degradation audit trail: scheduled, fired,
// retried and external-transition events append to it from now on.
// Attach before ticking starts; a nil trail (the default) drops events.
func (e *Engine) SetAudit(a *trace.Audit) {
	e.mu.Lock()
	e.audit = a
	e.mu.Unlock()
}

// attrName resolves a degradable-column position to its column name
// ("" for the tuple-delete queue).
func attrName(tbl *catalog.Table, attr int) string {
	if attr < 0 {
		return ""
	}
	return tbl.Columns[tbl.DegradableColumns()[attr]].Name
}

// RegisterPredicate binds a named predicate used by TriggerPredicate
// states. Unregistered predicates default to true (transition proceeds).
func (e *Engine) RegisterPredicate(name string, p Predicate) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.preds[name] = p
}

// queueFor returns (creating if needed) the queue for a transition.
func (e *Engine) queueFor(tbl *catalog.Table, attr int, state uint8) *transQueue {
	key := queueKey{table: tbl.ID, attr: attr, state: state}
	q, ok := e.queues[key]
	if ok {
		return q
	}
	q = &transQueue{tbl: tbl}
	if attr == -1 {
		age, _ := tbl.TupleLCP().DeleteAge()
		q.ageNano = int64(age)
		q.isDelete = true
	} else {
		pol := tbl.Columns[tbl.DegradableColumns()[attr]].Policy
		q.pol = pol
		q.fromState = int(state)
		age, ok := pol.DeadlineFromInsert(int(state))
		if !ok {
			// Final state of a Remain policy: no outgoing transition.
			return nil
		}
		q.ageNano = int64(age)
		if int(state) == pol.StateCount()-1 {
			q.toState = -1 // terminal: suppress / awaiting delete
		} else {
			q.toState = int(state) + 1
		}
		st := pol.StateAt(int(state))
		q.trigger = st.Trigger
		q.event = st.Event
		q.predicate = st.Predicate
	}
	e.queues[key] = q
	return q
}

// OnInsert registers a freshly inserted tuple with every queue that will
// eventually degrade it. Call after the insert commits.
func (e *Engine) OnInsert(tbl *catalog.Table, tid storage.TupleID, insertedAt time.Time) {
	tl := tbl.TupleLCP()
	if tl == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	nano := insertedAt.UTC().UnixNano()
	for attr := range tbl.DegradableColumns() {
		if q := e.queueFor(tbl, attr, 0); q != nil {
			q.fifo = append(q.fifo, task{tid: tid, insertNano: nano})
			e.audit.Append(trace.Event{Kind: trace.EvScheduled, UnixNano: nano,
				Table: tbl.Name, PK: fmt.Sprint(tid), Attr: attrName(tbl, attr),
				Deadline: nano + q.ageNano})
		}
	}
	if _, ok := tl.DeleteAge(); ok {
		if q := e.queueFor(tbl, -1, 0); q != nil {
			q.fifo = append(q.fifo, task{tid: tid, insertNano: nano})
			e.audit.Append(trace.Event{Kind: trace.EvScheduled, UnixNano: nano,
				Table: tbl.Name, PK: fmt.Sprint(tid), Detail: "tuple-delete",
				Deadline: nano + q.ageNano})
		}
	}
}

// OnExternalTransition registers the follow-up transition of a tuple
// whose attribute was just advanced to newState by an externally
// committed degrade record — a replicated leader batch applying on a
// follower. The follower's own tick then fires the NEXT transition at
// its deadline even if the leader never ships it (partition), which is
// the autonomous-clock rule. Terminal states need no follow-up. A task
// already enqueued for the same transition is harmless: the batch
// executor re-checks the tuple's current state under its row lock and
// skips stale tasks, so duplicates are no-ops.
func (e *Engine) OnExternalTransition(tbl *catalog.Table, tid storage.TupleID, attr int, newState uint8, insertNano int64) {
	if newState == storage.StateErased {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	q := e.queueFor(tbl, attr, newState)
	if q == nil {
		return
	}
	// Keep the FIFO in deadline (= insert) order: catch-up after a
	// partition can deliver transitions for tuples older than the queue
	// tail, and an out-of-order tail would delay them behind newer heads.
	i := sort.Search(len(q.fifo), func(i int) bool { return q.fifo[i].insertNano > insertNano })
	q.fifo = append(q.fifo, task{})
	copy(q.fifo[i+1:], q.fifo[i:])
	q.fifo[i] = task{tid: tid, insertNano: insertNano}
	e.audit.Append(trace.Event{Kind: trace.EvExternal,
		UnixNano: e.clock.Now().UTC().UnixNano(),
		Table:    tbl.Name, PK: fmt.Sprint(tid), Attr: attrName(tbl, attr),
		Detail:   fmt.Sprintf("replicated to state %d; follow-up scheduled", newState),
		Deadline: insertNano + q.ageNano})
}

// Reseed rebuilds all queues from the current storage state — the
// recovery path. Existing queue content is discarded.
func (e *Engine) Reseed() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queues = make(map[queueKey]*transQueue)
	for _, tbl := range e.cat.Tables() {
		tl := tbl.TupleLCP()
		if tl == nil {
			continue
		}
		ts := e.mgr.Table(tbl)
		_, hasDelete := tl.DeleteAge()
		err := ts.Scan(func(t storage.Tuple) bool {
			nano := t.InsertedAt.UnixNano()
			for attr, st := range t.States {
				if st == storage.StateErased {
					continue
				}
				if q := e.queueFor(tbl, attr, st); q != nil {
					q.fifo = append(q.fifo, task{tid: t.ID, insertNano: nano})
				}
			}
			if hasDelete {
				if q := e.queueFor(tbl, -1, 0); q != nil {
					q.fifo = append(q.fifo, task{tid: t.ID, insertNano: nano})
				}
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	// Scans return tuples in arbitrary order; restore deadline order.
	for _, q := range e.queues {
		sort.SliceStable(q.fifo, func(i, j int) bool { return q.fifo[i].insertNano < q.fifo[j].insertNano })
	}
	return nil
}

// FireEvent makes every event-triggered transition waiting on name due
// immediately (paper §IV: transitions caused by events). The transitions
// execute on the next Tick.
func (e *Engine) FireEvent(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, q := range e.queues {
		if q.trigger == lcp.TriggerEvent && q.event == name {
			q.eventFired = true
		}
	}
}

// DropTable discards every queue of a dropped table.
func (e *Engine) DropTable(tableID uint32) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for k := range e.queues {
		if k.table == tableID {
			delete(e.queues, k)
		}
	}
}

// Stats returns a snapshot of engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Transitions:   e.ctr.transitions.Load(),
		Erasures:      e.ctr.erasures.Load(),
		Deletions:     e.ctr.deletions.Load(),
		Batches:       e.ctr.batches.Load(),
		LockSkips:     e.ctr.lockSkips.Load(),
		PredicateHold: e.ctr.predicateHold.Load(),
		MaxLag:        time.Duration(e.ctr.maxLagNano.Load()),
		SumLag:        time.Duration(e.ctr.sumLagNano.Load()),
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, q := range e.queues {
		s.Pending += len(q.fifo) + len(q.retries)
	}
	return s
}

// Lag returns the current degradation lag at instant now: how far past
// its deadline the oldest still-pending transition is (zero when every
// queued tuple's deadline lies in the future, or nothing is queued).
// This is the system's headline SLO — the paper's guarantee is exactly
// "lag stays ~0" — and it intentionally uses raw deadlines, ignoring
// retry gates: a tuple waiting out a lock-busy recheck is still late.
func (e *Engine) Lag(now time.Time) time.Duration {
	nowNano := now.UTC().UnixNano()
	e.mu.Lock()
	defer e.mu.Unlock()
	var worst int64
	for _, q := range e.queues {
		if l := q.lagNano(nowNano); l > worst {
			worst = l
		}
	}
	return time.Duration(worst)
}

// lagNano returns the queue's lag at nowNano (0 if nothing overdue).
// The FIFO is deadline-ordered so its head is the oldest; retries lost
// their order and are scanned. Caller holds e.mu.
func (q *transQueue) lagNano(nowNano int64) int64 {
	var worst int64
	if len(q.fifo) > 0 {
		if l := nowNano - (q.fifo[0].insertNano + q.ageNano); l > worst {
			worst = l
		}
	}
	for _, t := range q.retries {
		if l := nowNano - (t.insertNano + q.ageNano); l > worst {
			worst = l
		}
	}
	return worst
}

// Instrument registers the engine's observability surface on reg: the
// headline instantdb_degrade_lag_seconds gauge, queue depths, per-table
// breakdowns, and the activity counters Stats() reports. Everything is
// collect-time — scrapes read the atomics and queue state the engine
// already maintains, so instrumentation adds zero hot-path work.
func (e *Engine) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("instantdb_degrade_lag_seconds",
		"Degradation lag: seconds past deadline of the oldest pending transition (0 = guarantee holding).",
		func() float64 { return e.Lag(e.clock.Now()).Seconds() })
	reg.GaugeFunc("instantdb_degrade_queue_depth",
		"Tuples currently awaiting a degradation transition across all queues.",
		func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			n := 0
			for _, q := range e.queues {
				n += len(q.fifo) + len(q.retries)
			}
			return float64(n)
		})
	reg.GaugeFuncVec("instantdb_degrade_table_lag_seconds",
		"Degradation lag per table (seconds past the oldest overdue deadline).", "table",
		func(emit func(string, float64)) {
			nowNano := e.clock.Now().UTC().UnixNano()
			e.mu.Lock()
			defer e.mu.Unlock()
			worst := make(map[string]int64)
			for _, q := range e.queues {
				if l := q.lagNano(nowNano); l > worst[q.tbl.Name] {
					worst[q.tbl.Name] = l
				} else if _, ok := worst[q.tbl.Name]; !ok {
					worst[q.tbl.Name] = 0
				}
			}
			for name, l := range worst {
				emit(name, time.Duration(l).Seconds())
			}
		})
	reg.GaugeFuncVec("instantdb_degrade_table_queue_depth",
		"Tuples awaiting a degradation transition, per table.", "table",
		func(emit func(string, float64)) {
			e.mu.Lock()
			defer e.mu.Unlock()
			depth := make(map[string]int)
			for _, q := range e.queues {
				depth[q.tbl.Name] += len(q.fifo) + len(q.retries)
			}
			for name, n := range depth {
				emit(name, float64(n))
			}
		})
	reg.CounterFunc("instantdb_degrade_transitions_total",
		"Attribute degradation transitions committed.",
		func() float64 { return float64(e.ctr.transitions.Load()) })
	reg.CounterFunc("instantdb_degrade_erasures_total",
		"Transitions that erased an attribute (terminal state).",
		func() float64 { return float64(e.ctr.erasures.Load()) })
	reg.CounterFunc("instantdb_degrade_deletions_total",
		"Whole-tuple deletions committed at their LCP delete deadline.",
		func() float64 { return float64(e.ctr.deletions.Load()) })
	reg.CounterFunc("instantdb_degrade_batches_total",
		"Degradation system-transaction batches committed.",
		func() float64 { return float64(e.ctr.batches.Load()) })
	reg.CounterFunc("instantdb_degrade_lock_skips_total",
		"Due tuples skipped because a reader held their row lock (retried next tick).",
		func() float64 { return float64(e.ctr.lockSkips.Load()) })
	reg.CounterFunc("instantdb_degrade_predicate_holds_total",
		"Due tuples held back by a false predicate gate (retried next tick).",
		func() float64 { return float64(e.ctr.predicateHold.Load()) })
	reg.GaugeFunc("instantdb_degrade_max_lag_seconds",
		"Worst (execution time - deadline) ever observed for a committed transition.",
		func() float64 { return time.Duration(e.ctr.maxLagNano.Load()).Seconds() })
}

// Tick executes every transition due at the clock's current instant and
// returns the number of tuples degraded or deleted.
func (e *Engine) Tick() (int, error) {
	now := e.clock.Now()
	total := 0
	for {
		n, err := e.tickOnce(now)
		total += n
		if err != nil {
			return total, err
		}
		if n == 0 {
			break
		}
	}
	if err := e.scrub.Periodic(now); err != nil {
		return total, err
	}
	return total, nil
}

// tickOnce runs at most one batch per queue.
func (e *Engine) tickOnce(now time.Time) (int, error) {
	e.mu.Lock()
	keys := make([]queueKey, 0, len(e.queues))
	for k := range e.queues {
		keys = append(keys, k)
	}
	e.mu.Unlock()
	// Deterministic order: attribute transitions by (table, attr,
	// state), deletions last so attributes are settled first.
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		ad, bd := a.attr == -1, b.attr == -1
		if ad != bd {
			return !ad
		}
		if a.table != b.table {
			return a.table < b.table
		}
		if a.attr != b.attr {
			return a.attr < b.attr
		}
		return a.state < b.state
	})
	total := 0
	for _, k := range keys {
		n, err := e.runQueue(k, now)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// popDue collects up to BatchSize due tasks from a queue.
func (e *Engine) popDue(q *transQueue, now time.Time) []task {
	nowNano := now.UTC().UnixNano()
	var due []task
	// Retries whose gate has passed.
	keep := q.retries[:0]
	for _, t := range q.retries {
		if len(due) < e.opts.BatchSize && t.notBefore <= nowNano &&
			(q.eventFired || t.insertNano+q.ageNano <= nowNano) {
			due = append(due, t)
		} else {
			keep = append(keep, t)
		}
	}
	q.retries = keep
	for len(q.fifo) > 0 && len(due) < e.opts.BatchSize {
		t := q.fifo[0]
		if !q.eventFired && t.insertNano+q.ageNano > nowNano {
			break
		}
		due = append(due, t)
		q.fifo = q.fifo[1:]
	}
	if len(q.fifo) == 0 && len(q.retries) == 0 {
		q.eventFired = false
	}
	return due
}

func (e *Engine) runQueue(key queueKey, now time.Time) (int, error) {
	e.mu.Lock()
	q := e.queues[key]
	if q == nil {
		e.mu.Unlock()
		return 0, nil
	}
	due := e.popDue(q, now)
	pred := Predicate(nil)
	if q.predicate != "" {
		pred = e.preds[q.predicate]
	}
	aud := e.audit
	e.mu.Unlock()
	if len(due) == 0 {
		return 0, nil
	}

	ts := e.mgr.Table(q.tbl)
	sysTxn := e.ids.Next()
	defer e.locks.ReleaseAll(sysTxn)
	if err := e.locks.Acquire(sysTxn, txn.TableRes(q.tbl.ID), txn.LockIX); err != nil {
		// A DDL holds the table; retry the whole batch next tick.
		e.requeue(q, due, now)
		return 0, nil
	}

	var recs []*wal.Record
	var followups []task
	var skipped, held []task
	nowNano := now.UTC().UnixNano()

	for _, t := range due {
		if !e.locks.TryAcquire(sysTxn, txn.RowRes(q.tbl.ID, t.tid), txn.LockX) {
			skipped = append(skipped, t)
			continue
		}
		tup, err := ts.Get(t.tid)
		if err != nil {
			continue // deleted meanwhile: nothing to do
		}
		if pred != nil && !pred(tup) {
			held = append(held, t)
			continue
		}
		if q.isDelete {
			recs = append(recs, &wal.Record{Type: wal.RecDelete, Table: q.tbl.ID, Tuple: t.tid,
				InsertNano: t.insertNano})
			continue
		}
		// Stale check: the tuple must still be in the source state.
		if int(tup.States[key.attr]) != q.fromState {
			continue
		}
		col := q.tbl.DegradableColumns()[key.attr]
		dom := q.tbl.Columns[col].Domain
		rec := &wal.Record{
			Type:       wal.RecDegrade,
			Table:      q.tbl.ID,
			Tuple:      t.tid,
			InsertNano: t.insertNano,
			DegPos:     uint8(key.attr),
		}
		if q.toState == -1 {
			rec.NewState = storage.StateErased
			rec.NewStored = value.Null()
		} else {
			fromLevel := q.pol.LevelOf(q.fromState)
			toLevel := q.pol.LevelOf(q.toState)
			next, err := dom.Degrade(tup.Row[col], fromLevel, toLevel)
			if err != nil {
				return 0, fmt.Errorf("degrade: %s.%s tuple %d: %w", q.tbl.Name, q.tbl.Columns[col].Name, t.tid, err)
			}
			rec.NewState = uint8(q.toState)
			rec.NewStored = next
			followups = append(followups, t)
		}
		recs = append(recs, rec)
	}

	n := 0
	if len(recs) > 0 {
		if err := e.commit(recs); err != nil {
			// Nothing applied: put every popped task back for retry so
			// a transient commit failure cannot silently drop deadlines.
			e.requeue(q, due, now)
			return 0, fmt.Errorf("degrade: commit batch: %w", err)
		}
		n = len(recs)
	}

	if len(recs) > 0 {
		e.ctr.batches.Add(1)
		for _, r := range recs {
			if q.isDelete || r.Type == wal.RecDelete {
				e.ctr.deletions.Add(1)
			} else {
				e.ctr.transitions.Add(1)
				if r.NewState == storage.StateErased {
					e.ctr.erasures.Add(1)
				}
			}
			if lag := nowNano - (r.InsertNano + q.ageNano); lag > 0 {
				e.ctr.sumLagNano.Add(lag)
				for {
					cur := e.ctr.maxLagNano.Load()
					if lag <= cur || e.ctr.maxLagNano.CompareAndSwap(cur, lag) {
						break
					}
				}
			}
		}
	}
	if len(recs) > 0 {
		// The fired events are the trail's core evidence: identity plus
		// deadline-vs-actual, the timeliness delta the paper claims.
		for _, r := range recs {
			ev := trace.Event{Kind: trace.EvFired, UnixNano: nowNano,
				Table: q.tbl.Name, PK: fmt.Sprint(r.Tuple),
				Deadline: r.InsertNano + q.ageNano, Actual: nowNano}
			if q.isDelete || r.Type == wal.RecDelete {
				ev.Detail = "tuple-delete"
			} else {
				ev.Attr = attrName(q.tbl, key.attr)
				if r.NewState == storage.StateErased {
					ev.Detail = "erased"
				} else {
					ev.Detail = fmt.Sprintf("state %d\u2192%d", q.fromState, r.NewState)
				}
			}
			aud.Append(ev)
		}
	}
	for _, t := range skipped {
		aud.Append(trace.Event{Kind: trace.EvRetried, UnixNano: nowNano,
			Table: q.tbl.Name, PK: fmt.Sprint(t.tid), Attr: attrName(q.tbl, key.attr),
			Deadline: t.insertNano + q.ageNano, Actual: nowNano, Detail: "row lock busy"})
	}
	for _, t := range held {
		aud.Append(trace.Event{Kind: trace.EvRetried, UnixNano: nowNano,
			Table: q.tbl.Name, PK: fmt.Sprint(t.tid), Attr: attrName(q.tbl, key.attr),
			Deadline: t.insertNano + q.ageNano, Actual: nowNano, Detail: "predicate held"})
	}
	e.ctr.lockSkips.Add(uint64(len(skipped)))
	e.ctr.predicateHold.Add(uint64(len(held)))
	e.mu.Lock()
	retryAt := nowNano + int64(e.opts.RecheckInterval)
	for _, t := range skipped {
		t.notBefore = retryAt
		q.retries = append(q.retries, t)
	}
	for _, t := range held {
		t.notBefore = retryAt
		q.retries = append(q.retries, t)
	}
	// Enqueue follow-up transitions for tuples that advanced to a
	// non-terminal state.
	if len(followups) > 0 && q.toState != -1 {
		nq := e.queueFor(q.tbl, key.attr, uint8(q.toState))
		if nq != nil {
			nq.fifo = append(nq.fifo, followups...)
		}
	}
	e.mu.Unlock()

	if len(recs) > 0 && !q.isDelete {
		// Log scrubbing: tuples inserted before cutoff have passed this
		// transition's deadline.
		cutoff := time.Unix(0, nowNano-q.ageNano)
		if err := e.scrub.AfterTransition(q.tbl, key.attr, uint8(q.fromState), cutoff); err != nil {
			return n, fmt.Errorf("degrade: scrub: %w", err)
		}
	}
	return n, nil
}

// requeue returns tasks to a queue's retry list with a recheck delay.
func (e *Engine) requeue(q *transQueue, tasks []task, now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	at := now.UTC().UnixNano() + int64(e.opts.RecheckInterval)
	for _, t := range tasks {
		t.notBefore = at
		q.retries = append(q.retries, t)
	}
}

// NextDeadline returns the earliest pending transition deadline, ok=false
// when nothing is queued. Simulation harnesses use it to advance virtual
// time exactly to the next event.
func (e *Engine) NextDeadline() (time.Time, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var best int64
	found := false
	for _, q := range e.queues {
		if len(q.fifo) > 0 {
			d := q.fifo[0].insertNano + q.ageNano
			if !found || d < best {
				best, found = d, true
			}
		}
		for _, t := range q.retries {
			d := t.notBefore
			if dl := t.insertNano + q.ageNano; dl > d {
				d = dl
			}
			if !found || d < best {
				best, found = d, true
			}
		}
	}
	if !found {
		return time.Time{}, false
	}
	return time.Unix(0, best).UTC(), true
}

// Run ticks the engine every interval until Stop. Use with wall clocks;
// simulations call Tick directly.
func (e *Engine) Run(interval time.Duration) {
	e.mu.Lock()
	if e.stop != nil {
		e.mu.Unlock()
		return
	}
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	stop, done := e.stop, e.done
	e.mu.Unlock()
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				e.Tick() //nolint:errcheck // background loop; stats carry failures
			}
		}
	}()
}

// Stop halts the background loop started by Run.
func (e *Engine) Stop() {
	e.mu.Lock()
	stop, done := e.stop, e.done
	e.stop, e.done = nil, nil
	e.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
