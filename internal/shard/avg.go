package shard

import (
	"fmt"

	"instantdb/internal/query"
	"instantdb/internal/value"
	"instantdb/internal/wire"
)

// AVG cannot be recombined from per-shard averages (they lose their
// weights), so the router rewrites it into its partials before the
// fan-out: every AVG(col) item becomes SUM(col) + COUNT(col), the
// rewritten statement scatters with ORDER BY/LIMIT stripped (they
// re-apply at the router over the collapsed rows), the partials merge
// with the ordinary SUM/COUNT rules, and the router collapses each
// merged row back into the original projection with avg = sum/count —
// exactly the division a single node would have performed over the
// union of the shards' rows.

// avgScatter is the rewrite of one AVG-bearing scattered SELECT.
type avgScatter struct {
	orig *query.Select
	sel  *query.Select // partials; no ORDER BY/LIMIT
	sql  string        // rendered rewritten statement (literals only)
	// spec maps each original item to rewritten-output positions: pos is
	// the item's own column (the SUM partial for AVG items), cnt the
	// COUNT partial (-1 for non-AVG items).
	spec []avgPos
}

type avgPos struct{ pos, cnt int }

// hasAvg reports whether any projection item is an AVG.
func hasAvg(s *query.Select) bool {
	for _, it := range s.Items {
		if it.Agg == query.AggAvg {
			return true
		}
	}
	return false
}

// rewriteAvg builds the partial-aggregate scatter plan for s (which
// must contain at least one AVG item). The rewritten statement renders
// from the bound AST, so a statement whose arguments were not all bound
// is refused here rather than merged wrong.
func rewriteAvg(s *query.Select) (*avgScatter, error) {
	rw := &query.Select{Table: s.Table, Where: s.Where, GroupBy: s.GroupBy,
		Limit: -1, Purpose: s.Purpose}
	av := &avgScatter{orig: s}
	for i, it := range s.Items {
		if it.Agg != query.AggAvg {
			av.spec = append(av.spec, avgPos{pos: len(rw.Items), cnt: -1})
			rw.Items = append(rw.Items, it)
			continue
		}
		av.spec = append(av.spec, avgPos{pos: len(rw.Items), cnt: len(rw.Items) + 1})
		rw.Items = append(rw.Items,
			query.SelectItem{Agg: query.AggSum, Col: it.Col, Alias: fmt.Sprintf("__avg%d_sum", i)},
			query.SelectItem{Agg: query.AggCount, Col: it.Col, Alias: fmt.Sprintf("__avg%d_cnt", i)})
	}
	sql, err := query.RenderSelect(rw)
	if err != nil {
		return nil, refuse("AVG scatter rewrite: %v", err)
	}
	av.sel, av.sql = rw, sql
	return av, nil
}

// collapse folds the merged partial rows back into the original
// projection (avg = sum/count, NULL when no shard contributed a row —
// matching the engine's NULL-skipping AVG) and re-applies the original
// ORDER BY/LIMIT, which were withheld from the shards.
func (av *avgScatter) collapse(merged *wire.Rows) (*wire.Rows, error) {
	out := &wire.Rows{Columns: make([]string, len(av.orig.Items))}
	for i, it := range av.orig.Items {
		out.Columns[i] = itemLabel(it)
	}
	for _, row := range merged.Data {
		if len(row) != len(av.sel.Items) {
			return nil, fmt.Errorf("shard: AVG partial row width %d != %d", len(row), len(av.sel.Items))
		}
		orow := make([]value.Value, len(av.spec))
		for i, sp := range av.spec {
			if sp.cnt == -1 {
				orow[i] = row[sp.pos]
				continue
			}
			sum, cnt := row[sp.pos], row[sp.cnt]
			if cnt.IsNull() || cnt.Int() == 0 {
				orow[i] = value.Null()
				continue
			}
			sf, ok := sum.AsFloat()
			if !ok {
				return nil, fmt.Errorf("shard: AVG sum partial has kind %s", sum.Kind())
			}
			orow[i] = value.Float(sf / float64(cnt.Int()))
		}
		out.Data = append(out.Data, orow)
	}
	return out, orderAndLimit(av.orig, out)
}

// itemLabel mirrors the engine's output-column naming (alias, else the
// lowercase rendered form), so the collapsed result is labeled exactly
// as a single-node execution of the original statement.
func itemLabel(it query.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	switch it.Agg {
	case query.AggNone:
		return it.Col.Column
	case query.AggCount:
		if it.CountStar {
			return "count(*)"
		}
		return "count(" + it.Col.Column + ")"
	case query.AggSum:
		return "sum(" + it.Col.Column + ")"
	case query.AggAvg:
		return "avg(" + it.Col.Column + ")"
	case query.AggMin:
		return "min(" + it.Col.Column + ")"
	case query.AggMax:
		return "max(" + it.Col.Column + ")"
	}
	return "?"
}
