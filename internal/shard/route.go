package shard

import (
	"errors"
	"fmt"
	"strings"

	"instantdb/internal/query"
	"instantdb/internal/value"
)

// action classifies where a statement executes.
type action int

const (
	// actSingle forwards the statement verbatim to one shard.
	actSingle action = iota
	// actScatter fans a SELECT out to every shard and merges the rows.
	actScatter
	// actBroadcast fans a write/DDL out to every shard in order and sums
	// the affected counts.
	actBroadcast
	// actSetPurpose switches the session purpose on every downstream
	// session.
	actSetPurpose
	// actRollback rolls back on every open downstream session
	// (idempotent, like the server's own Rollback).
	actRollback
)

// plan is the routing decision for one statement.
type plan struct {
	act   action
	shard int           // actSingle target
	sel   *query.Select // actScatter merge spec
	ddl   bool          // actBroadcast: mirror into the router schema
	name  string        // actSetPurpose purpose name
}

// errRefused marks statements the router cannot execute across shards;
// the router reports them as ordinary statement errors (CodeSQL) with
// the session intact.
var errRefused = errors.New("shard: statement refused by router")

func refuse(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errRefused, fmt.Sprintf(format, args...))
}

// planStatement classifies one statement against a routing table and
// schema mirror. Single-key DML and point SELECTs route to the owning
// shard; scans scatter; DDL and unkeyed writes broadcast; transactions
// are refused (there is no cross-shard transaction protocol — a
// documented caveat, not a silent downgrade).
func planStatement(t *Table, sch *Schema, st query.Statement) (*plan, error) {
	switch s := st.(type) {
	case *query.Select:
		return planSelect(t, sch, s)
	case *query.Insert:
		return planInsert(t, sch, s)
	case *query.Update:
		shape := sch.table(s.Table)
		if shape == nil {
			return nil, refuse("unknown table %q", s.Table)
		}
		for _, set := range s.Sets {
			if shape.pk != "" && strings.EqualFold(set.Column, shape.pk) {
				return nil, refuse("UPDATE of primary key %s.%s would reroute the row between shards", s.Table, shape.pk)
			}
		}
		return planKeyedWrite(t, shape, s.Where)
	case *query.Delete:
		shape := sch.table(s.Table)
		if shape == nil {
			return nil, refuse("unknown table %q", s.Table)
		}
		return planKeyedWrite(t, shape, s.Where)
	case *query.CreateDomain, *query.CreatePolicy, *query.CreateIndex,
		*query.DropIndex, *query.DeclarePurpose, *query.FireEvent:
		return &plan{act: actBroadcast}, nil
	case *query.CreateTable, *query.DropTable:
		return &plan{act: actBroadcast, ddl: true}, nil
	case *query.SetPurpose:
		return &plan{act: actSetPurpose, name: s.Name}, nil
	case *query.Rollback:
		return &plan{act: actRollback}, nil
	case *query.Begin, *query.Commit:
		return nil, refuse("transactions are not supported through the shard router (no cross-shard transaction protocol); connect to a single shard for transactional work")
	default:
		return nil, refuse("statement %T is not routable", st)
	}
}

func planSelect(t *Table, sch *Schema, s *query.Select) (*plan, error) {
	shape := sch.table(s.Table)
	if shape == nil {
		return nil, refuse("unknown table %q", s.Table)
	}
	if shape.pk == "" {
		// A pk-less table cannot be split by key: the whole table lives
		// on one shard, and every statement against it routes there.
		return &plan{act: actSingle, shard: t.ShardForTable(shape.name)}, nil
	}
	if key, ok := wherePin(s.Where, shape.pk); ok {
		return &plan{act: actSingle, shard: t.ShardForKey(key)}, nil
	}
	if len(t.Shards) == 1 {
		return &plan{act: actSingle, shard: 0}, nil
	}
	if err := scatterable(s); err != nil {
		return nil, err
	}
	return &plan{act: actScatter, sel: s}, nil
}

func planInsert(t *Table, sch *Schema, s *query.Insert) (*plan, error) {
	shape := sch.table(s.Table)
	if shape == nil {
		return nil, refuse("unknown table %q", s.Table)
	}
	if shape.pk == "" {
		return &plan{act: actSingle, shard: t.ShardForTable(shape.name)}, nil
	}
	cols := s.Columns
	if len(cols) == 0 {
		cols = shape.cols
	}
	pkIdx := -1
	for i, c := range cols {
		if strings.EqualFold(c, shape.pk) {
			pkIdx = i
			break
		}
	}
	if pkIdx == -1 {
		return nil, refuse("INSERT into %s must supply the primary key %s for routing", s.Table, shape.pk)
	}
	target := -1
	for _, row := range s.Rows {
		if pkIdx >= len(row) {
			return nil, refuse("INSERT row has no value for primary key %s", shape.pk)
		}
		lit, ok := row[pkIdx].(*query.Literal)
		if !ok {
			return nil, refuse("INSERT primary key must be a literal (bind arguments before routing)")
		}
		sh := t.ShardForKey(lit.Val)
		if target == -1 {
			target = sh
		} else if target != sh {
			// Splitting a multi-row INSERT across shards would commit
			// per-shard with no atomicity; refusing keeps the statement's
			// all-or-nothing meaning honest.
			return nil, refuse("multi-row INSERT spans shards; issue one INSERT per shard (no cross-shard atomicity)")
		}
	}
	if target == -1 {
		return nil, refuse("INSERT has no rows")
	}
	return &plan{act: actSingle, shard: target}, nil
}

// planKeyedWrite routes UPDATE/DELETE: a WHERE pinning the primary key
// goes to the owning shard, anything else broadcasts (each shard applies
// its own matching rows; affected counts sum).
func planKeyedWrite(t *Table, shape *tableShape, where query.Expr) (*plan, error) {
	if shape.pk == "" {
		return &plan{act: actSingle, shard: t.ShardForTable(shape.name)}, nil
	}
	if key, ok := wherePin(where, shape.pk); ok {
		return &plan{act: actSingle, shard: t.ShardForKey(key)}, nil
	}
	return &plan{act: actBroadcast}, nil
}

// wherePin extracts the literal a WHERE clause pins column pk to:
// an `pk = literal` comparison reachable through top-level ANDs. OR and
// NOT branches never pin (the statement may match rows elsewhere).
func wherePin(e query.Expr, pk string) (value.Value, bool) {
	switch x := e.(type) {
	case *query.Compare:
		if x.Op != "=" {
			return value.Null(), false
		}
		if col, ok := x.Left.(*query.ColumnRef); ok && strings.EqualFold(col.Column, pk) {
			if lit, ok := x.Right.(*query.Literal); ok {
				return lit.Val, true
			}
		}
		if col, ok := x.Right.(*query.ColumnRef); ok && strings.EqualFold(col.Column, pk) {
			if lit, ok := x.Left.(*query.Literal); ok {
				return lit.Val, true
			}
		}
	case *query.Logical:
		if x.Op == "AND" {
			if v, ok := wherePin(x.Left, pk); ok {
				return v, true
			}
			return wherePin(x.Right, pk)
		}
	}
	return value.Null(), false
}

// scatterable validates that a multi-shard SELECT's result can be
// recombined exactly from per-shard results; anything that cannot is
// refused with the reason rather than merged wrong.
func scatterable(s *query.Select) error {
	hasAgg := false
	for _, it := range s.Items {
		if it.Agg != query.AggNone {
			hasAgg = true
		}
	}
	if len(s.GroupBy) > 0 {
		for _, g := range s.GroupBy {
			found := false
			for _, it := range s.Items {
				if it.Agg == query.AggNone && it.Col != nil && strings.EqualFold(it.Col.Column, g.Column) {
					found = true
					break
				}
			}
			if !found {
				return refuse("GROUP BY column %s must be selected for cross-shard recombination", g.Column)
			}
		}
	}
	if s.Limit >= 0 && (hasAgg || len(s.GroupBy) > 0) {
		return refuse("LIMIT with aggregates or GROUP BY cannot be pushed to shards (per-shard limits drop groups)")
	}
	return nil
}
