package shard

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"instantdb/client"
	"instantdb/internal/metrics"
	"instantdb/internal/query"
	"instantdb/internal/trace"
	"instantdb/internal/value"
	"instantdb/internal/wire"
)

// Options tunes a Router.
type Options struct {
	// MaxConns caps concurrently served client sessions (0 = unlimited).
	MaxConns int
	// MaxFrame bounds request payloads on both sides (default
	// wire.MaxFrameDefault).
	MaxFrame int
	// DialTimeout bounds each downstream shard dial (default 5s).
	DialTimeout time.Duration
	// RequestTimeout bounds each downstream request, so a partitioned
	// shard fails a scatter fast instead of hanging the client session
	// (default 30s).
	RequestTimeout time.Duration
	// TablePath, when set, is where Flip persists the routing table.
	TablePath string
	// TraceSample controls local router-side tracing: 0 records only
	// traces forced by clients (OpTraced), 1 every request, n one in n.
	// Traced statements propagate their context to every shard they
	// touch, so the shards' spans stitch under the router's.
	TraceSample int
	// SlowTrace is the tracer's slow-ring threshold (0 = trace.DefaultSlow).
	SlowTrace time.Duration
	// Logf, when non-nil, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

// Router serves the internal/wire protocol to clients and speaks it to
// every shard: single-key statements forward to the owning shard, scans
// scatter and merge, DDL broadcasts. The router is deliberately a
// separate process front end rather than client-side routing: clients
// stay topology-unaware (degradectl, workloads and SQL drivers point at
// one address), and the fail-loud routing-version handshake
// (OpShardCheck) runs between two long-lived parties that can both
// persist what they have seen. The router holds no state a restart
// cannot rebuild from the routing table and the shards themselves.
type Router struct {
	opts   Options
	schema *Schema
	reg    *metrics.Registry
	met    routerMetrics
	tracer *trace.Tracer

	tableMu sync.RWMutex
	table   *Table

	// pauseMu freezes routing during a split cutover: every request
	// holds it shared, Pause takes it exclusively.
	pauseMu sync.RWMutex

	// Stats-rollup state (see stats.go): per-shard reachability and the
	// max lag observed at the last rollup, read back by gauge callbacks.
	statsMu sync.Mutex
	shardUp map[string]float64
	maxLag  float64

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

type routerMetrics struct {
	conns     *metrics.Gauge
	requests  *metrics.CounterVec
	scatters  *metrics.Counter
	broadcast *metrics.Counter
}

// New validates the routing table against every shard (each must accept
// the table's version via OpShardCheck — a shard that has served a newer
// table fails the start, loud) and mirrors the schema from the first
// shard. Every shard must be reachable at start; partitions after start
// degrade only the routes that need the missing shard.
func New(ctx context.Context, t *Table, opts Options) (*Router, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = wire.MaxFrameDefault
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 30 * time.Second
	}
	r := &Router{opts: opts, table: t.Clone(), schema: NewSchema(),
		reg: metrics.NewRegistry(), conns: make(map[net.Conn]struct{}),
		tracer: trace.New("router", opts.TraceSample, opts.SlowTrace)}
	metrics.InstrumentBuildInfo(r.reg)
	r.met = routerMetrics{
		conns: r.reg.Gauge("instantdb_router_active_conns",
			"Client connections currently served by the router."),
		requests: r.reg.CounterVec("instantdb_router_requests_total",
			"Requests handled by the router, by opcode.", "op"),
		scatters: r.reg.Counter("instantdb_router_scatter_total",
			"SELECTs fanned out to every shard and merged."),
		broadcast: r.reg.Counter("instantdb_router_broadcast_total",
			"Writes/DDL fanned out to every shard."),
	}
	r.reg.GaugeFunc("instantdb_router_shards",
		"Shards in the active routing table.", func() float64 {
			return float64(len(r.currentTable().Shards))
		})
	r.reg.GaugeFunc("instantdb_router_table_version",
		"Active routing-table version.", func() float64 {
			return float64(r.currentTable().Version)
		})
	r.registerStatsGauges()
	for i := range t.Shards {
		if err := r.checkShard(ctx, t, i); err != nil {
			return nil, err
		}
	}
	script, err := r.fetchSchema(ctx, t)
	if err != nil {
		return nil, err
	}
	if err := r.schema.ApplyScript(script); err != nil {
		return nil, err
	}
	return r, nil
}

// checkShard pins the table version on shard i (fresh connection).
func (r *Router) checkShard(ctx context.Context, t *Table, i int) error {
	ctx, cancel := context.WithTimeout(ctx, r.opts.DialTimeout)
	defer cancel()
	c, err := client.Dial(ctx, t.Shards[i].Addr, client.WithMaxFrame(r.opts.MaxFrame))
	if err != nil {
		return fmt.Errorf("shard: %s (%s): %w", t.Shards[i].Name, t.Shards[i].Addr, err)
	}
	defer c.Close()
	if _, err := c.ShardCheck(ctx, t.Version); err != nil {
		return fmt.Errorf("shard: %s refused table v%d: %w", t.Shards[i].Name, t.Version, err)
	}
	return nil
}

// fetchSchema mirrors the catalog script from the first reachable shard.
func (r *Router) fetchSchema(ctx context.Context, t *Table) (string, error) {
	var lastErr error
	for _, info := range t.Shards {
		cctx, cancel := context.WithTimeout(ctx, r.opts.DialTimeout)
		c, err := client.Dial(cctx, info.Addr, client.WithMaxFrame(r.opts.MaxFrame))
		if err != nil {
			cancel()
			lastErr = err
			continue
		}
		script, err := c.Schema(cctx)
		c.Close()
		cancel()
		if err != nil {
			lastErr = err
			continue
		}
		return script, nil
	}
	return "", fmt.Errorf("shard: no shard answered the schema request: %w", lastErr)
}

// Metrics exposes the router's own registry (stats rollups add the
// per-shard aggregation on top; see MergedStats).
func (r *Router) Metrics() *metrics.Registry { return r.reg }

// Schema exposes the router's schema mirror.
func (r *Router) Schema() *Schema { return r.schema }

// Tracer exposes the router's request tracer (for /debug/traces).
func (r *Router) Tracer() *trace.Tracer { return r.tracer }

// currentTable returns the active routing table (shared reference; the
// table is immutable).
func (r *Router) currentTable() *Table {
	r.tableMu.RLock()
	defer r.tableMu.RUnlock()
	return r.table
}

// Table returns a copy of the active routing table.
func (r *Router) Table() *Table { return r.currentTable().Clone() }

// Pause blocks until in-flight requests drain and freezes routing —
// the cutover window of an online split. Resume unfreezes.
func (r *Router) Pause() { r.pauseMu.Lock() }

// Resume ends a Pause.
func (r *Router) Resume() { r.pauseMu.Unlock() }

// Flip activates the next routing-table version: shards may only be
// appended (existing indexes keep their meaning for live sessions), the
// version must grow, and every shard of the new table must accept it
// via OpShardCheck before the swap — after which the shards' persisted
// versions fence out any router still holding the old table. Call
// between Pause and Resume when the flip moves data (an online split);
// the swap itself is atomic either way. When Options.TablePath is set
// the new table is persisted before activation.
func (r *Router) Flip(ctx context.Context, next *Table) error {
	if err := next.Validate(); err != nil {
		return err
	}
	cur := r.currentTable()
	if next.Version <= cur.Version {
		return fmt.Errorf("shard: flip to v%d but v%d is active", next.Version, cur.Version)
	}
	if next.Slots != cur.Slots {
		return fmt.Errorf("shard: flip changes slot count %d → %d", cur.Slots, next.Slots)
	}
	if len(next.Shards) < len(cur.Shards) {
		return fmt.Errorf("shard: flip removes shards (%d → %d)", len(cur.Shards), len(next.Shards))
	}
	for i, s := range cur.Shards {
		if next.Shards[i] != s {
			return fmt.Errorf("shard: flip reorders shard %d (%s → %s); shards are append-only", i, s.Name, next.Shards[i].Name)
		}
	}
	for i := range next.Shards {
		if err := r.checkShard(ctx, next, i); err != nil {
			return err
		}
	}
	if r.opts.TablePath != "" {
		if err := next.Save(r.opts.TablePath); err != nil {
			return err
		}
	}
	r.tableMu.Lock()
	r.table = next.Clone()
	r.tableMu.Unlock()
	return nil
}

// ListenAndServe listens on addr and serves until Close.
func (r *Router) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return r.Serve(ln)
}

// Serve accepts client connections on ln until Close.
func (r *Router) Serve(ln net.Listener) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		ln.Close()
		return errors.New("shard: router already closed")
	}
	r.ln = ln
	r.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if !r.track(nc) {
			continue
		}
		go func() {
			defer r.wg.Done()
			r.handle(nc)
		}()
	}
}

// Addr returns the bound listener address (nil before Serve).
func (r *Router) Addr() net.Addr {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ln == nil {
		return nil
	}
	return r.ln.Addr()
}

// Close stops accepting, closes every live session and waits for the
// handlers to drain. Idempotent.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	ln := r.ln
	for nc := range r.conns {
		nc.Close()
	}
	r.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	r.wg.Wait()
	return err
}

func (r *Router) track(nc net.Conn) bool {
	r.mu.Lock()
	switch {
	case r.closed:
		r.mu.Unlock()
		wire.WriteFrame(nc, wire.OpError, wire.EncodeError(wire.CodeShutdown, "router: shutting down"))
		nc.Close()
		return false
	case r.opts.MaxConns > 0 && len(r.conns) >= r.opts.MaxConns:
		r.mu.Unlock()
		wire.WriteFrame(nc, wire.OpError, wire.EncodeError(wire.CodeServerBusy,
			fmt.Sprintf("router: connection limit (%d) reached", r.opts.MaxConns)))
		nc.Close()
		return false
	}
	r.conns[nc] = struct{}{}
	r.wg.Add(1)
	r.mu.Unlock()
	r.met.conns.Inc()
	return true
}

func (r *Router) untrack(nc net.Conn) {
	r.mu.Lock()
	delete(r.conns, nc)
	r.mu.Unlock()
	r.met.conns.Dec()
}

func (r *Router) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// rsession is one client session's router-side state: the session
// purpose/coarse flags and one lazily dialed downstream session per
// shard, each carrying the same purpose — purpose enforcement runs at
// every shard, never at the router.
type rsession struct {
	r       *Router
	purpose string
	coarse  bool
	conns   map[int]*client.Conn
}

// conn returns the downstream session for shard idx, dialing (and
// pinning the routing-table version via OpShardCheck) on first use.
func (ss *rsession) conn(ctx context.Context, t *Table, idx int) (*client.Conn, error) {
	if c, ok := ss.conns[idx]; ok && !c.Closed() {
		return c, nil
	}
	delete(ss.conns, idx)
	info := t.Shards[idx]
	dctx, cancel := context.WithTimeout(ctx, ss.r.opts.DialTimeout)
	defer cancel()
	opts := []client.Option{client.WithMaxFrame(ss.r.opts.MaxFrame)}
	if ss.purpose != "" {
		opts = append(opts, client.WithPurpose(ss.purpose))
	}
	if ss.coarse {
		opts = append(opts, client.WithCoarse())
	}
	c, err := client.Dial(dctx, info.Addr, opts...)
	if err != nil {
		return nil, fmt.Errorf("shard %s (%s) unreachable: %w", info.Name, info.Addr, err)
	}
	if _, err := c.ShardCheck(dctx, t.Version); err != nil {
		c.Close()
		return nil, fmt.Errorf("shard %s refused table v%d: %w", info.Name, t.Version, err)
	}
	ss.conns[idx] = c
	return c, nil
}

func (ss *rsession) closeAll() {
	for _, c := range ss.conns {
		c.Close()
	}
}

// handle runs one client session: handshake, then the request loop.
func (r *Router) handle(nc net.Conn) {
	defer r.untrack(nc)
	defer nc.Close()
	br := bufio.NewReader(nc)

	ss, err := r.handshake(nc, br)
	if err != nil {
		if !errors.Is(err, io.EOF) {
			r.logf("handshake %s: %v", nc.RemoteAddr(), err)
		}
		return
	}
	defer ss.closeAll()
	for {
		op, payload, err := wire.ReadFrame(br, r.opts.MaxFrame)
		if err != nil {
			if errors.Is(err, wire.ErrFrameTooLarge) {
				r.fail(nc, wire.CodeFrameTooLarge, err.Error())
			}
			return
		}
		r.met.requests.With(routerOpName(op)).Inc()
		if !r.serveRequest(nc, ss, op, payload) {
			return
		}
	}
}

// handshake accepts the client Hello. The purpose is not validated here
// — the router has no purpose catalog — but every downstream dial
// carries it, so the owning shard enforces it on the session's first
// routed statement.
func (r *Router) handshake(nc net.Conn, br *bufio.Reader) (*rsession, error) {
	op, payload, err := wire.ReadFrame(br, r.opts.MaxFrame)
	if err != nil {
		return nil, err
	}
	if op != wire.OpHello {
		r.fail(nc, wire.CodeProtocol, fmt.Sprintf("router: expected hello, got opcode %#x", op))
		return nil, fmt.Errorf("first frame opcode %#x", op)
	}
	h, err := wire.DecodeHello(payload)
	if err != nil {
		r.fail(nc, wire.CodeProtocol, err.Error())
		return nil, err
	}
	if h.Version != wire.Version {
		r.fail(nc, wire.CodeProtocol,
			fmt.Sprintf("router: protocol version %d unsupported (want %d)", h.Version, wire.Version))
		return nil, fmt.Errorf("protocol version %d", h.Version)
	}
	ss := &rsession{r: r, purpose: h.Purpose, coarse: h.Coarse, conns: make(map[int]*client.Conn)}
	if err := wire.WriteFrame(nc, wire.OpWelcome, wire.EncodeWelcome()); err != nil {
		return nil, err
	}
	return ss, nil
}

// serveRequest dispatches one request. Returns false to end the session.
func (r *Router) serveRequest(nc net.Conn, ss *rsession, op byte, payload []byte) bool {
	switch op {
	case wire.OpPing:
		return wire.WriteFrame(nc, wire.OpPong, nil) == nil
	case wire.OpStats:
		ctx, cancel := context.WithTimeout(context.Background(), r.opts.RequestTimeout)
		defer cancel()
		stats := r.MergedStats(ctx)
		return wire.WriteFrame(nc, wire.OpStatsReply, wire.EncodeStats(stats)) == nil
	case wire.OpSchema:
		return wire.WriteFrame(nc, wire.OpSchemaReply, []byte(r.schema.Script())) == nil
	case wire.OpExec, wire.OpQuery:
		return r.execSQL(nc, ss, string(payload), nil)
	case wire.OpExecArgs:
		sql, args, err := wire.DecodeExecArgs(payload)
		if err != nil {
			r.fail(nc, wire.CodeProtocol, err.Error())
			return false
		}
		return r.execSQL(nc, ss, sql, args)
	case wire.OpSetPurpose:
		return r.setPurpose(nc, ss, string(payload))
	case wire.OpBegin, wire.OpBeginRO, wire.OpCommit:
		return r.sendErr(nc, wire.CodeSQL, errors.New(
			"router: transactions are not supported through the shard router (no cross-shard transaction protocol); connect to a single shard"))
	case wire.OpRollback:
		return r.rollbackAll(nc, ss)
	case wire.OpPrepare, wire.OpExecPrepared, wire.OpCloseStmt:
		return r.sendErr(nc, wire.CodeSQL, errors.New(
			"router: prepared statements are not supported through the shard router; use Exec with arguments"))
	case wire.OpBackup, wire.OpKeyExport:
		return r.sendErr(nc, wire.CodeSQL, errors.New(
			"router: back up each shard directly (epoch keys and WALs are per-shard)"))
	case wire.OpTraced:
		trd, err := wire.DecodeTraced(payload)
		if err != nil {
			r.fail(nc, wire.CodeProtocol, err.Error())
			return false
		}
		return r.serveTraced(nc, ss, trd)
	case wire.OpTraceDump:
		mode, id, err := wire.DecodeTraceDump(payload)
		if err != nil {
			r.fail(nc, wire.CodeProtocol, err.Error())
			return false
		}
		return r.serveTraceDump(nc, ss, mode, id)
	case wire.OpAuditTail:
		n, err := wire.DecodeAuditTail(payload)
		if err != nil {
			r.fail(nc, wire.CodeProtocol, err.Error())
			return false
		}
		return r.serveAuditTail(nc, ss, n)
	default:
		r.fail(nc, wire.CodeProtocol, fmt.Sprintf("router: unknown opcode %#x", op))
		return false
	}
}

// setPurpose switches the session purpose and propagates it to every
// already-open downstream session (future dials carry it at handshake).
func (r *Router) setPurpose(nc net.Conn, ss *rsession, name string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.RequestTimeout)
	defer cancel()
	for idx, c := range ss.conns {
		if err := c.SetPurpose(ctx, name); err != nil {
			code := wire.CodeSQL
			if errors.Is(err, wire.ErrUnknownPurpose) {
				code = wire.CodeUnknownPurpose
			}
			_ = idx
			return r.sendErr(nc, code, err)
		}
	}
	ss.purpose = name
	return r.sendResultFrame(nc, &wire.Result{})
}

// rollbackAll rolls back on every open downstream session; like the
// single-node server, rollback is idempotent.
func (r *Router) rollbackAll(nc net.Conn, ss *rsession) bool {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.RequestTimeout)
	defer cancel()
	for _, c := range ss.conns {
		if err := c.Rollback(ctx); err != nil {
			return r.sendErr(nc, wire.CodeSQL, err)
		}
	}
	return r.sendResultFrame(nc, &wire.Result{})
}

// execSQL parses, plans and executes one statement under local trace
// sampling (a remote-forced trace instead enters via serveTraced).
func (r *Router) execSQL(nc net.Conn, ss *rsession, sql string, args []value.Value) bool {
	tt, root := r.tracer.Start("exec")
	if root != nil {
		root.Attr("sql", sql)
		defer root.End()
	}
	return r.execSQLTraced(nc, ss, sql, args, tt, root)
}

// execSQLTraced parses, plans and executes one statement. The original
// SQL (and arguments) forward verbatim to the target shards — the
// router never rewrites statements, it only picks recipients and merges
// results. When tt is non-nil the statement is being traced: routing
// work records spans under root, and every downstream request wraps in
// OpTraced so the shards' server-side spans join the same tree.
func (r *Router) execSQLTraced(nc net.Conn, ss *rsession, sql string, args []value.Value, tt *trace.T, root *trace.S) bool {
	psp := tt.Span(root, "plan")
	st, err := parseForRouting(sql, args)
	if err != nil {
		psp.End()
		return r.sendErr(nc, wire.CodeSQL, err)
	}
	r.pauseMu.RLock()
	defer r.pauseMu.RUnlock()
	t := r.currentTable()
	p, err := planStatement(t, r.schema, st)
	psp.End()
	if err != nil {
		return r.sendErr(nc, wire.CodeSQL, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.RequestTimeout)
	defer cancel()

	switch p.act {
	case actSingle:
		c, err := ss.conn(ctx, t, p.shard)
		if err != nil {
			return r.sendErr(nc, wire.CodeSQL, err)
		}
		res, err := r.shardExec(ctx, c, tt, root, t.Shards[p.shard].Name, sql, args)
		if err != nil {
			return r.forwardErr(nc, ss, p.shard, err)
		}
		return r.sendResult(nc, res)
	case actScatter:
		r.met.scatters.Inc()
		return r.scatter(ctx, nc, ss, t, p.sel, sql, args, tt, root)
	case actBroadcast:
		r.met.broadcast.Inc()
		affected := 0
		for idx := range t.Shards {
			c, err := ss.conn(ctx, t, idx)
			if err != nil {
				return r.sendErr(nc, wire.CodeSQL, err)
			}
			res, err := r.shardExec(ctx, c, tt, root, t.Shards[idx].Name, sql, args)
			if err != nil {
				return r.forwardErr(nc, ss, idx, err)
			}
			affected += res.RowsAffected
		}
		if p.ddl {
			r.schema.ApplyStmt(st, sql)
		}
		return r.sendResultFrame(nc, &wire.Result{RowsAffected: uint64(affected)})
	case actSetPurpose:
		return r.setPurpose(nc, ss, p.name)
	case actRollback:
		return r.rollbackAll(nc, ss)
	}
	return r.sendErr(nc, wire.CodeSQL, fmt.Errorf("router: unhandled plan action %d", p.act))
}

// shardExec forwards one statement to a shard. Under a trace, the
// request wraps in OpTraced with a fresh client-side span as the
// shard's remote parent, so the shard's root hangs under it in the
// stitched tree and the span itself shows the round-trip cost.
func (r *Router) shardExec(ctx context.Context, c *client.Conn, tt *trace.T, parent *trace.S, shard, sql string, args []value.Value) (*client.Result, error) {
	if tt == nil {
		return c.Exec(ctx, sql, args...)
	}
	sp := tt.Span(parent, "shard_exec")
	sp.Attr("shard", shard)
	res, err := c.ExecTracedAs(ctx, tt.ID(), sp.ID(), sql, args...)
	sp.End()
	return res, err
}

// scatter fans a SELECT out to every shard concurrently and merges.
// A shard that cannot answer fails the query fast (with the shard named)
// rather than silently returning partial data — but only this query:
// routes that avoid the dead shard keep working. AVG statements are the
// one case where the router rewrites before fanning out: shards receive
// the SUM+COUNT partial form (see avg.go) and the router divides.
func (r *Router) scatter(ctx context.Context, nc net.Conn, ss *rsession, t *Table, sel *query.Select, sql string, args []value.Value, tt *trace.T, root *trace.S) bool {
	var av *avgScatter
	if hasAvg(sel) {
		a, err := rewriteAvg(sel)
		if err != nil {
			return r.sendErr(nc, wire.CodeSQL, err)
		}
		// The rewritten statement carries its literals (arguments were
		// bound during routing), so it ships without args.
		av, sel, sql, args = a, a.sel, a.sql, nil
	}
	conns := make([]*client.Conn, len(t.Shards))
	for idx := range t.Shards {
		c, err := ss.conn(ctx, t, idx)
		if err != nil {
			return r.sendErr(nc, wire.CodeSQL, err)
		}
		conns[idx] = c
	}
	parts := make([]*wire.Rows, len(conns))
	errs := make([]error, len(conns))
	var wg sync.WaitGroup
	for idx, c := range conns {
		wg.Add(1)
		go func(idx int, c *client.Conn) {
			defer wg.Done()
			res, err := r.shardExec(ctx, c, tt, root, t.Shards[idx].Name, sql, args)
			if err != nil {
				errs[idx] = err
				return
			}
			rows := res.Rows
			if rows == nil {
				rows = &client.Rows{}
			}
			parts[idx] = &wire.Rows{Columns: rows.Columns, Data: rows.Data}
		}(idx, c)
	}
	wg.Wait()
	for idx, err := range errs {
		if err != nil {
			return r.forwardErr(nc, ss, idx, fmt.Errorf("shard %s: %w", t.Shards[idx].Name, err))
		}
	}
	msp := tt.Span(root, "merge")
	merged, err := mergeSelect(sel, parts)
	msp.End()
	if err != nil {
		return r.sendErr(nc, wire.CodeSQL, err)
	}
	if av != nil {
		if merged, err = av.collapse(merged); err != nil {
			return r.sendErr(nc, wire.CodeSQL, err)
		}
	}
	return r.sendResultFrame(nc, &wire.Result{RowsAffected: uint64(len(merged.Data)), Rows: merged})
}

// forwardErr relays a downstream failure to the client. Wire errors keep
// their code (purpose denials, read-only refusals and SQL errors arrive
// exactly as a direct connection would see them); transport failures
// surface as CodeSQL with the shard named, and the dead downstream
// session is dropped so the next statement redials.
func (r *Router) forwardErr(nc net.Conn, ss *rsession, idx int, err error) bool {
	var werr *wire.Error
	if errors.As(err, &werr) && !werr.Fatal() {
		return r.sendErr(nc, werr.Code, werr)
	}
	if c, ok := ss.conns[idx]; ok && c.Closed() {
		delete(ss.conns, idx)
	}
	return r.sendErr(nc, wire.CodeSQL, err)
}

// parseForRouting parses one statement, binding arguments to
// placeholders so the primary key is visible to the planner.
func parseForRouting(sql string, args []value.Value) (query.Statement, error) {
	if len(args) == 0 {
		return query.Parse(sql)
	}
	st, n, err := query.ParseWithParams(sql)
	if err != nil {
		return nil, err
	}
	return query.BindKnown(st, args, n)
}

func (r *Router) sendResult(nc net.Conn, res *client.Result) bool {
	w := &wire.Result{RowsAffected: uint64(res.RowsAffected), LastInsertID: res.LastInsertID}
	if res.Rows != nil {
		w.Rows = &wire.Rows{Columns: res.Rows.Columns, Data: res.Rows.Data}
	}
	return r.sendResultFrame(nc, w)
}

func (r *Router) sendResultFrame(nc net.Conn, res *wire.Result) bool {
	return wire.WriteFrame(nc, wire.OpResult, wire.EncodeResult(res)) == nil
}

func (r *Router) sendErr(nc net.Conn, code uint16, err error) bool {
	return wire.WriteFrame(nc, wire.OpError, wire.EncodeError(code, err.Error())) == nil
}

func (r *Router) fail(nc net.Conn, code uint16, msg string) {
	wire.WriteFrame(nc, wire.OpError, wire.EncodeError(code, msg))
}

func routerOpName(op byte) string {
	switch op {
	case wire.OpPing:
		return "ping"
	case wire.OpExec:
		return "exec"
	case wire.OpQuery:
		return "query"
	case wire.OpExecArgs:
		return "exec_args"
	case wire.OpSetPurpose:
		return "set_purpose"
	case wire.OpRollback:
		return "rollback"
	case wire.OpStats:
		return "stats"
	case wire.OpSchema:
		return "schema"
	case wire.OpTraced:
		return "traced"
	case wire.OpTraceDump:
		return "trace_dump"
	case wire.OpAuditTail:
		return "audit_tail"
	default:
		return fmt.Sprintf("0x%02x", op)
	}
}
