package shard_test

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"instantdb/client"
	"instantdb/internal/engine"
	"instantdb/internal/forensic"
	"instantdb/internal/server"
	"instantdb/internal/storage"
	"instantdb/internal/value"
)

// gaugeValue reads one gauge from a shard's own registry.
func gaugeValue(t *testing.T, db *engine.DB, key string) float64 {
	t.Helper()
	for _, s := range db.Metrics().Snapshot() {
		if s.Key == key {
			return s.Value
		}
	}
	t.Fatalf("metric %s not found", key)
	return 0
}

// scanShardDir runs the forensic adversary over every persistent
// artifact of one shard: raw store pages, WAL segments, key file.
func scanShardDir(t *testing.T, db *engine.DB, dir string, needles []forensic.Needle) forensic.Report {
	t.Helper()
	rep, err := forensic.ScanStore(db.StorageManager().Store(), needles)
	if err != nil {
		t.Fatal(err)
	}
	dirRep, err := forensic.ScanDir(filepath.Join(dir, "wal"), needles)
	if err != nil {
		t.Fatal(err)
	}
	rep.Merge(dirRep)
	keyRep, err := forensic.ScanFile(filepath.Join(dir, "keys.db"), needles)
	if err != nil {
		t.Fatal(err)
	}
	rep.Merge(keyRep)
	return rep
}

// TestPartitionedShardEnforcesDeadlines is the subsystem's core
// guarantee, extended from PR 4's replica rule to a partitioned shard:
// a shard cut off from the router still executes its LCP transitions at
// the deadline on its OWN clock; point reads on the surviving shards
// keep answering (a scatter fails fast, naming the dead shard, instead
// of blocking); and after the partition heals, a forensic scan of every
// shard's store, WAL and key file finds no trace of the expired
// accuracy state. Fully deterministic: every shard runs on a simulated
// clock.
func TestPartitionedShardEnforcesDeadlines(t *testing.T) {
	c := startCluster(t, 3)
	conn := dialRouter(t, c)
	ctx := context.Background()
	const n = 60
	insertVisits(t, conn, n)

	// Every shard must hold rows for the partition to mean something.
	perShard := make([][]int, 3)
	for i, s := range c.shards {
		perShard[i] = shardIDs(t, s)
		if len(perShard[i]) == 0 {
			t.Fatalf("shard %d holds no rows; test ids do not cover the ring", i)
		}
	}

	// Collect forensic needles for every stored address form, per shard
	// (tuple ids are shard-local and sequential from 1).
	needles := make([][]forensic.Needle, 3)
	for i, s := range c.shards {
		tbl, err := s.db.Catalog().Table("visits")
		if err != nil {
			t.Fatal(err)
		}
		for tid := storage.TupleID(1); tid <= storage.TupleID(len(perShard[i])); tid++ {
			tup, err := s.db.StorageManager().Table(tbl).Get(tid)
			if err != nil {
				t.Fatal(err)
			}
			needles[i] = append(needles[i],
				forensic.NeedleForStored(fmt.Sprintf("s%d-address-%d", i, tid), tup.Row[2]))
		}
		// The needles are live before the deadline (validates them).
		if rep, err := forensic.ScanStore(s.db.StorageManager().Store(), needles[i]); err != nil || rep.Clean() {
			t.Fatalf("shard %d: needles must be present pre-deadline (err=%v)", i, err)
		}
	}

	// ---- Partition shard 1: its server goes away, its engine (clock,
	// degrader, WAL) keeps running, unreachable from the router. ----
	const p = 1
	c.shards[p].srv.Close()

	// Cross the 15m address deadline on the partitioned shard's own
	// clock. Before the tick the lag gauge shows the breach; the tick
	// (the shard's autonomous degradation loop) brings it back to 0.
	c.shards[p].clock.Advance(16 * time.Minute)
	if lag := gaugeValue(t, c.shards[p].db, "instantdb_degrade_lag_seconds"); lag <= 0 {
		t.Fatalf("pre-tick lag on partitioned shard = %v, want > 0", lag)
	}
	done, err := c.shards[p].db.DegradeNow()
	if err != nil {
		t.Fatal(err)
	}
	if done < len(perShard[p]) {
		t.Fatalf("partitioned shard executed %d transitions, want >= %d", done, len(perShard[p]))
	}
	if lag := gaugeValue(t, c.shards[p].db, "instantdb_degrade_lag_seconds"); lag != 0 {
		t.Fatalf("post-tick lag on partitioned shard = %v, want 0 (deadline enforced on time)", lag)
	}

	// Survivors keep serving: a point read owned by a live shard works.
	survivorID := int64(perShard[0][0])
	rows, err := conn.Query(ctx, "SELECT who FROM visits WHERE id = ?", value.Int(survivorID))
	if err != nil || rows.Len() != 1 {
		t.Fatalf("survivor point read during partition: rows=%v err=%v", rows, err)
	}
	// A scatter needs all shards: it fails fast and names the dead one.
	start := time.Now()
	_, err = conn.Query(ctx, "SELECT id FROM visits ORDER BY id")
	if err == nil || !strings.Contains(err.Error(), c.shards[p].name) {
		t.Fatalf("scatter during partition: err=%v, want failure naming %s", err, c.shards[p].name)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("scatter failure took %v; it must fail fast, not block", elapsed)
	}

	// ---- Heal: the shard's server comes back on the same address. ----
	ln, err := net.Listen("tcp", c.shards[p].addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := server.New(c.shards[p].db, server.Options{})
	go srv2.Serve(ln) //nolint:errcheck // closed in cleanup
	t.Cleanup(func() { srv2.Close() })

	// The same session recovers on its next statement (the router
	// redials the healed shard), and scatter works again.
	var healed *client.Rows
	for i := 0; i < 50; i++ {
		healed, err = conn.Query(ctx, "SELECT id FROM visits ORDER BY id")
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil || healed.Len() != n {
		t.Fatalf("post-heal scatter: %d rows err=%v", healed.Len(), err)
	}

	// Cross the deadline on the other shards too, then the forensic
	// sweep: no shard directory may hold any expired address anywhere —
	// the sealed-payload/key-shredding invariant survives partitioning.
	for i := range c.shards {
		if i == p {
			continue
		}
		c.shards[i].clock.Advance(16 * time.Minute)
		if _, err := c.shards[i].db.DegradeNow(); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range c.shards {
		if rep := scanShardDir(t, s.db, s.dir, needles[i]); !rep.Clean() {
			t.Fatalf("forensic scan of shard %d found expired plaintext: %v", i, rep.Findings)
		}
	}

	// Degraded-state exposure through the router matches a single node:
	// the address-level purpose observes nothing anymore.
	precise := dialRouter(t, c, client.WithPurpose("precise"))
	rows, err = precise.Query(ctx, "SELECT id, place FROM visits ORDER BY id")
	if err != nil || rows.Len() != 0 {
		t.Fatalf("post-deadline precise scatter: %d rows err=%v (expired state served)", rows.Len(), err)
	}
}
