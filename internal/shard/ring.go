// Package shard partitions an InstantDB deployment horizontally: a
// versioned hash-slot routing table maps every primary key to one of N
// independent instantdb-server leader processes, and a Router front end
// (cmd/instantdb-router) speaks the internal/wire protocol on both
// sides, forwarding single-key statements to the owning shard and
// fanning scans out scatter-gather.
//
// Each shard keeps its own WAL, key store and autonomous degradation
// clock. That is the point of the design, not an accident: the paper's
// guarantee — attributes degrade at their LCP deadlines no matter what —
// must hold per storage node. A shard partitioned from the router keeps
// degrading and shredding its keys on time, exactly as PR 4's
// monotone-reconciliation rule already proved safe for replicas, so no
// coordination failure can ever delay a deadline.
package shard

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"

	"instantdb/internal/value"
)

// DefaultSlots is the hash-slot count for new routing tables: large
// enough that a split moves key ranges at sub-percent granularity,
// small enough that the assignment array stays trivial to persist and
// diff.
const DefaultSlots = 1024

// Info identifies one shard: a stable name (used in metrics labels and
// operator output) and the wire address of its instantdb-server.
type Info struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// Table is a versioned routing table: Slots hash slots assigned to
// Shards. Slot assignment is by index into Shards, so the JSON form is
// compact and diffs between versions show exactly the moved ranges.
// Tables are immutable once built — rebalancing produces a new Table
// with a higher Version (see SplitOff), and every shard persists the
// highest version it has served under, so a router presenting an older
// table fails loud (wire.CodeShardStale) instead of misrouting.
type Table struct {
	Version uint64 `json:"version"`
	Slots   int    `json:"slots"`
	Shards  []Info `json:"shards"`
	// Assign maps slot → index into Shards.
	Assign []int `json:"assign"`
}

// Uniform builds a version-1 table spreading the slot space over shards
// in contiguous ranges (slot s → shard s*len(shards)/slots).
func Uniform(shards []Info) *Table {
	t := &Table{Version: 1, Slots: DefaultSlots, Shards: shards, Assign: make([]int, DefaultSlots)}
	for s := range t.Assign {
		t.Assign[s] = s * len(shards) / DefaultSlots
	}
	return t
}

// Validate checks structural invariants: at least one shard, every slot
// assigned to an existing shard, distinct shard names.
func (t *Table) Validate() error {
	if len(t.Shards) == 0 {
		return fmt.Errorf("shard: table v%d has no shards", t.Version)
	}
	if t.Slots <= 0 || len(t.Assign) != t.Slots {
		return fmt.Errorf("shard: table v%d has %d slots but %d assignments", t.Version, t.Slots, len(t.Assign))
	}
	seen := make(map[string]bool, len(t.Shards))
	for _, s := range t.Shards {
		if s.Name == "" || s.Addr == "" {
			return fmt.Errorf("shard: table v%d has a shard with empty name or addr", t.Version)
		}
		if seen[s.Name] {
			return fmt.Errorf("shard: table v%d has duplicate shard name %q", t.Version, s.Name)
		}
		seen[s.Name] = true
	}
	for slot, idx := range t.Assign {
		if idx < 0 || idx >= len(t.Shards) {
			return fmt.Errorf("shard: table v%d slot %d assigned to unknown shard %d", t.Version, slot, idx)
		}
	}
	return nil
}

// Slot hashes a primary-key value to its slot. The hash runs over the
// value's canonical storage encoding (internal/value), so the mapping is
// stable across processes, restarts and architectures.
func (t *Table) Slot(key value.Value) int {
	h := fnv.New64a()
	h.Write(value.Encode(nil, key))
	return int(h.Sum64() % uint64(t.Slots))
}

// SlotForTable hashes a table name to a slot: a table without a primary
// key cannot be split by key, so the whole table lives on the shard
// owning this slot.
func (t *Table) SlotForTable(name string) int {
	h := fnv.New64a()
	h.Write([]byte(strings.ToLower(name)))
	return int(h.Sum64() % uint64(t.Slots))
}

// ShardForKey returns the index of the shard owning a primary-key value.
func (t *Table) ShardForKey(key value.Value) int { return t.Assign[t.Slot(key)] }

// ShardForTable returns the index of the shard owning a pk-less table.
func (t *Table) ShardForTable(name string) int { return t.Assign[t.SlotForTable(name)] }

// SlotsOf returns the slots assigned to shard idx, ascending.
func (t *Table) SlotsOf(idx int) []int {
	var out []int
	for s, a := range t.Assign {
		if a == idx {
			out = append(out, s)
		}
	}
	return out
}

// Clone returns a deep copy.
func (t *Table) Clone() *Table {
	n := &Table{Version: t.Version, Slots: t.Slots}
	n.Shards = append([]Info(nil), t.Shards...)
	n.Assign = append([]int(nil), t.Assign...)
	return n
}

// SplitOff builds the next table version: the upper half of src's slots
// move to a new shard appended to the shard list; every other slot keeps
// its owner. It returns the new table and the moved slots — the only
// keys whose routing changes between the two versions, which the
// rebalance tests pin down.
func (t *Table) SplitOff(src int, info Info) (*Table, []int) {
	n := t.Clone()
	n.Version++
	n.Shards = append(n.Shards, info)
	owned := t.SlotsOf(src)
	moved := owned[len(owned)/2:]
	for _, s := range moved {
		n.Assign[s] = len(n.Shards) - 1
	}
	return n, append([]int(nil), moved...)
}

// MovedSlots returns the slots whose owner differs between t and next
// (both tables must have the same slot count).
func (t *Table) MovedSlots(next *Table) []int {
	var out []int
	for s := range t.Assign {
		if t.Assign[s] != next.Assign[s] {
			out = append(out, s)
		}
	}
	return out
}

// Load reads a routing table from its JSON file and validates it.
func Load(path string) (*Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("shard: parse %s: %w", path, err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Save atomically writes the routing table as JSON (tmp + rename), so a
// crash mid-write never leaves a torn table for the next router start.
func (t *Table) Save(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o600); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}
