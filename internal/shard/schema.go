package shard

import (
	"fmt"
	"strings"
	"sync"

	"instantdb/internal/query"
)

// tableShape is the routing-relevant slice of one table's schema: its
// column order (for INSERTs without a column list) and primary key.
type tableShape struct {
	name string
	cols []string // lowercase, declaration order
	pk   string   // lowercase primary-key column, "" if none
}

// Schema is the router's mirror of the shards' catalog: just enough
// shape (column order, primary keys) to route statements, learned from
// the shards' own append-only DDL script (OpSchema) and kept current as
// the router broadcasts DDL. The shards stay authoritative — the mirror
// never validates columns or types, it only locates primary keys.
type Schema struct {
	mu     sync.RWMutex
	tables map[string]*tableShape
	stmts  []string // raw statements, in application order
}

// NewSchema returns an empty mirror.
func NewSchema() *Schema {
	return &Schema{tables: make(map[string]*tableShape)}
}

// ApplyScript parses a full catalog DDL script and mirrors it,
// replacing the current state.
func (s *Schema) ApplyScript(script string) error {
	stmts, err := query.ParseScript(script)
	if err != nil {
		return fmt.Errorf("shard: schema script: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables = make(map[string]*tableShape)
	s.stmts = nil
	for _, st := range stmts {
		s.applyLocked(st)
	}
	s.stmts = append(s.stmts, splitScript(script)...)
	return nil
}

// ApplyStmt mirrors one DDL statement the router just broadcast.
func (s *Schema) ApplyStmt(st query.Statement, raw string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyLocked(st)
	s.stmts = append(s.stmts, strings.TrimSpace(raw))
}

func (s *Schema) applyLocked(st query.Statement) {
	switch d := st.(type) {
	case *query.CreateTable:
		sh := &tableShape{name: strings.ToLower(d.Name)}
		for _, c := range d.Columns {
			name := strings.ToLower(c.Name)
			sh.cols = append(sh.cols, name)
			if c.PrimaryKey {
				sh.pk = name
			}
		}
		s.tables[sh.name] = sh
	case *query.DropTable:
		delete(s.tables, strings.ToLower(d.Name))
	}
}

// table returns the shape of a table, or nil if unknown.
func (s *Schema) table(name string) *tableShape {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[strings.ToLower(name)]
}

// TableNames returns the mirrored table names, unordered.
func (s *Schema) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	return out
}

// Script renders the mirrored DDL back as a script (OpSchema replies
// from the router).
func (s *Schema) Script() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var b strings.Builder
	for _, st := range s.stmts {
		b.WriteString(st)
		if !strings.HasSuffix(st, ";") {
			b.WriteString(";")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// splitScript cuts a DDL script into trimmed statements (best effort:
// the script is machine-generated, one statement per ';').
func splitScript(script string) []string {
	var out []string
	for _, part := range strings.Split(script, ";") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p+";")
		}
	}
	return out
}
