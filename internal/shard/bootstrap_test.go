package shard_test

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"instantdb/client"
	"instantdb/internal/engine"
	"instantdb/internal/server"
	"instantdb/internal/shard"
	"instantdb/internal/value"
	"instantdb/internal/vclock"
)

// TestOnlineShardBootstrap is the online-split acceptance test: a
// 1-shard deployment splits into 2 while a writer keeps inserting
// through the router, and at the end every successfully acknowledged
// row exists exactly once, on exactly the shard the new table owns.
// The sequence is backup stream → WAL tail → pause → drain → promote →
// trim → table flip → resume.
func TestOnlineShardBootstrap(t *testing.T) {
	c := startCluster(t, 1)
	conn := dialRouter(t, c)
	ctx := context.Background()
	const preSplit = 50
	insertVisits(t, conn, preSplit)

	// A concurrent writer keeps inserting through the router for the
	// whole split. Only acknowledged inserts count.
	var mu sync.Mutex
	acked := make(map[int]bool, preSplit)
	for i := 1; i <= preSplit; i++ {
		acked[i] = true
	}
	stop := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		wconn, err := client.Dial(ctx, c.addr)
		if err != nil {
			writerDone <- err
			return
		}
		defer wconn.Close()
		for id := preSplit + 1; ; id++ {
			select {
			case <-stop:
				writerDone <- nil
				return
			default:
			}
			_, err := wconn.Exec(ctx, "INSERT INTO visits (id, who, place) VALUES (?, ?, ?)",
				value.Int(int64(id)), value.Text("w"), value.Text("Dam 1"))
			if err != nil {
				writerDone <- fmt.Errorf("concurrent insert %d: %w", id, err)
				return
			}
			mu.Lock()
			acked[id] = true
			mu.Unlock()
		}
	}()

	// Phase 1: bootstrap the new shard from the live source — backup +
	// key stream into a fresh directory, then a WAL tail. The source
	// keeps taking writes throughout.
	newDir := filepath.Join(t.TempDir(), "s1")
	b, err := shard.Begin(ctx, shard.BootstrapOptions{
		SourceAddr: c.shards[0].addr,
		Dir:        newDir,
		Config:     engine.Config{Clock: vclock.NewSimulated(vclock.Epoch), ShredBucket: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let writes land during the tail

	// Phase 2: cutover. Pause the router (writers block, nothing routes),
	// drain the tail to the source's exact log end, promote the replica
	// to a leader and serve it.
	c.router.Pause()
	drainCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
	err = b.Drain(drainCtx)
	cancel()
	if err != nil {
		c.router.Resume()
		t.Fatal(err)
	}
	db2, err := b.Promote()
	if err != nil {
		c.router.Resume()
		t.Fatal(err)
	}
	t.Cleanup(func() { db2.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv2 := server.New(db2, server.Options{})
	go srv2.Serve(ln) //nolint:errcheck // closed in cleanup
	t.Cleanup(func() { srv2.Close() })

	// Phase 3: trim both sides to the next table, flip, resume.
	next, moved := c.table.SplitOff(0, shard.Info{Name: "s1", Addr: ln.Addr().String()})
	if len(moved) == 0 {
		t.Fatal("split moved no slots")
	}
	trimmedNew, err := shard.Trim(db2, next, 1)
	if err != nil {
		t.Fatal(err)
	}
	trimmedSrc, err := shard.Trim(c.shards[0].db, next, 0)
	if err != nil {
		t.Fatal(err)
	}
	if trimmedNew == 0 || trimmedSrc == 0 {
		t.Fatalf("trim removed %d/%d rows (new/src); both sides must shed the other's keys", trimmedNew, trimmedSrc)
	}
	if err := c.router.Flip(ctx, next); err != nil {
		t.Fatal(err)
	}
	c.router.Resume()

	// Let the writer run against the flipped table, then stop it.
	time.Sleep(100 * time.Millisecond)
	close(stop)
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	want := make(map[int]bool, len(acked))
	for id := range acked {
		want[id] = true
	}
	mu.Unlock()
	if len(want) <= preSplit {
		t.Fatalf("writer landed no concurrent inserts (%d total); test proves nothing", len(want))
	}

	// No row lost, none double-served: the scatter through the router
	// returns every acknowledged id exactly once.
	rows, err := conn.Query(ctx, "SELECT id FROM visits ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for _, r := range rows.Data {
		seen[int(r[0].Int())]++
	}
	for id := range want {
		if seen[id] != 1 {
			t.Fatalf("id %d served %d times through the router, want exactly 1", id, seen[id])
		}
	}
	for id, n := range seen {
		if !want[id] {
			t.Fatalf("id %d served %d times but was never acknowledged", id, n)
		}
	}

	// And physically: each row lives on exactly the shard the new table
	// owns, nowhere else.
	srcRows, err := c.shards[0].db.NewConn().Query("SELECT id FROM visits")
	if err != nil {
		t.Fatal(err)
	}
	newRows, err := db2.NewConn().Query("SELECT id FROM visits")
	if err != nil {
		t.Fatal(err)
	}
	physical := make(map[int]int)
	for _, r := range srcRows.Data {
		id := int(r[0].Int())
		physical[id]++
		if next.ShardForKey(value.Int(int64(id))) != 0 {
			t.Fatalf("id %d still on the source after trim; owner is shard 1", id)
		}
	}
	for _, r := range newRows.Data {
		id := int(r[0].Int())
		physical[id]++
		if next.ShardForKey(value.Int(int64(id))) != 1 {
			t.Fatalf("id %d on the new shard but owned by shard 0", id)
		}
	}
	if len(physical) != len(want) {
		t.Fatalf("%d distinct rows stored across shards, want %d", len(physical), len(want))
	}
	for id, n := range physical {
		if n != 1 {
			t.Fatalf("id %d stored on %d shards, want exactly 1", id, n)
		}
	}
}
