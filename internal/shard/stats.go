package shard

import (
	"context"
	"sort"
	"strings"
	"time"

	"instantdb/client"
	"instantdb/internal/wire"
)

// registerStatsGauges wires the rollup-fed gauges into the router's own
// registry: the max-over-shards degradation lag headline and a per-shard
// reachability gauge. Both report the state observed at the last
// MergedStats rollup (gauges never dial shards themselves).
func (r *Router) registerStatsGauges() {
	r.reg.GaugeFunc("instantdb_router_degrade_lag_max_seconds",
		"Maximum instantdb_degrade_lag_seconds across shards at the last stats rollup.",
		func() float64 {
			r.statsMu.Lock()
			defer r.statsMu.Unlock()
			return r.maxLag
		})
	r.reg.GaugeFuncVec("instantdb_router_shard_up",
		"Whether the shard answered the last stats rollup (1) or not (0).",
		"shard", func(emit func(string, float64)) {
			r.statsMu.Lock()
			defer r.statsMu.Unlock()
			names := make([]string, 0, len(r.shardUp))
			for n := range r.shardUp {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				emit(n, r.shardUp[n])
			}
		})
}

// lagKey reports whether a metric must aggregate as a maximum across
// shards rather than a sum: lag and age gauges answer "how far behind is
// the worst shard", and summing them would fabricate a lag no shard has.
// Latency quantile columns (_p50/_p99 from histogram snapshots) are not
// summable either — adding two shards' p99s fabricates a latency no
// request saw — so they also take the max ("worst shard's quantile").
// Everything else (counters, queue depths, byte totals) sums.
func lagKey(k string) bool {
	return strings.Contains(k, "_lag") || strings.Contains(k, "_age_") ||
		strings.Contains(k, "_p50") || strings.Contains(k, "_p99")
}

// MergedStats aggregates every shard's wire Stats into one deployment
// view: keys measuring lag take the max over shards, everything else
// sums, and the router's own registry (request counters, table version,
// per-shard up gauges) overlays on top. A shard that cannot answer is
// skipped and reported down via instantdb_router_shard_up — stats never
// block on a partitioned shard beyond its dial timeout.
func (r *Router) MergedStats(ctx context.Context) []wire.Stat {
	t := r.currentTable()
	merged := make(map[string]float64)
	up := make(map[string]float64, len(t.Shards))
	var maxLag float64
	for _, info := range t.Shards {
		stats, err := r.shardStats(ctx, info)
		if err != nil {
			r.logf("stats %s (%s): %v", info.Name, info.Addr, err)
			up[info.Name] = 0
			continue
		}
		up[info.Name] = 1
		for k, v := range stats {
			if lagKey(k) {
				if v > merged[k] {
					merged[k] = v
				}
				if strings.HasPrefix(k, "instantdb_degrade_lag_seconds") && v > maxLag {
					maxLag = v
				}
			} else {
				merged[k] += v
			}
		}
	}
	r.statsMu.Lock()
	r.shardUp = up
	r.maxLag = maxLag
	r.statsMu.Unlock()
	for _, s := range r.reg.Snapshot() {
		merged[s.Key] = s.Value
	}
	out := make([]wire.Stat, 0, len(merged))
	for k, v := range merged {
		out = append(out, wire.Stat{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// shardStats fetches one shard's stats on a fresh short-lived connection
// (session conns belong to client sessions; stats must not contend with
// them).
func (r *Router) shardStats(ctx context.Context, info Info) (map[string]float64, error) {
	ctx, cancel := context.WithTimeout(ctx, r.opts.DialTimeout)
	defer cancel()
	c, err := client.Dial(ctx, info.Addr, client.WithMaxFrame(r.opts.MaxFrame))
	if err != nil {
		return nil, err
	}
	defer c.Close()
	// Stats replies can be slow only if the shard is; bound the read so a
	// half-dead shard cannot stall the whole rollup.
	sctx, scancel := context.WithTimeout(ctx, 2*time.Second)
	defer scancel()
	return c.Stats(sctx)
}
