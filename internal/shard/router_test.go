package shard_test

import (
	"context"
	"fmt"
	"math"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"instantdb/client"
	"instantdb/internal/engine"
	"instantdb/internal/server"
	"instantdb/internal/shard"
	"instantdb/internal/value"
	"instantdb/internal/vclock"
)

// testSchema mirrors the paper's running example: a degradable location
// attribute under a 15m/1h/1d/1mo policy, plus a pk-less side table to
// exercise whole-table pinning.
const testSchema = `
CREATE DOMAIN location TREE LEVELS (address, city, region, country)
  PATH ('Dam 1', 'Amsterdam', 'Noord-Holland', 'Netherlands')
  PATH ('Coolsingel 40', 'Rotterdam', 'Zuid-Holland', 'Netherlands');
CREATE POLICY locpol ON location (
  HOLD address FOR '15m',
  HOLD city FOR '1h',
  HOLD region FOR '1d',
  HOLD country FOR '1mo'
) THEN DELETE;
CREATE TABLE visits (
  id INT PRIMARY KEY,
  who TEXT NOT NULL,
  place TEXT DEGRADABLE DOMAIN location POLICY locpol
);
CREATE TABLE logs (body TEXT);
DECLARE PURPOSE precise SET ACCURACY LEVEL address FOR visits.place;
`

// testShard is one live shard: its own directory, simulated clock,
// engine and wire server.
type testShard struct {
	name  string
	dir   string
	clock *vclock.Simulated
	db    *engine.DB
	srv   *server.Server
	addr  string
}

func startShard(t *testing.T, name string) *testShard {
	t.Helper()
	s := &testShard{name: name, clock: vclock.NewSimulated(vclock.Epoch)}
	s.dir = filepath.Join(t.TempDir(), name)
	db, err := engine.Open(engine.Config{Dir: s.dir, Clock: s.clock, ShredBucket: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	s.db = db
	if err := db.ExecScript(testSchema); err != nil {
		t.Fatal(err)
	}
	s.srv = server.New(db, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.addr = ln.Addr().String()
	go s.srv.Serve(ln) //nolint:errcheck // closed via srv.Close
	t.Cleanup(func() {
		s.srv.Close()
		s.db.Close()
	})
	return s
}

// cluster is N shards behind one router.
type cluster struct {
	shards []*testShard
	table  *shard.Table
	router *shard.Router
	addr   string
}

func startCluster(t *testing.T, n int) *cluster {
	t.Helper()
	c := &cluster{}
	var infos []shard.Info
	for i := 0; i < n; i++ {
		s := startShard(t, fmt.Sprintf("s%d", i))
		c.shards = append(c.shards, s)
		infos = append(infos, shard.Info{Name: s.name, Addr: s.addr})
	}
	c.table = shard.Uniform(infos)
	r, err := shard.New(context.Background(), c.table, shard.Options{RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	c.router = r
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.addr = ln.Addr().String()
	go r.Serve(ln) //nolint:errcheck // closed via r.Close
	t.Cleanup(func() { r.Close() })
	return c
}

func dialRouter(t *testing.T, c *cluster, opts ...client.Option) *client.Conn {
	t.Helper()
	conn, err := client.Dial(context.Background(), c.addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// shardIDs queries one shard directly for the visit ids it stores.
func shardIDs(t *testing.T, s *testShard) []int {
	t.Helper()
	rows, err := s.db.NewConn().Query("SELECT id FROM visits ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	var out []int
	for _, r := range rows.Data {
		out = append(out, int(r[0].Int()))
	}
	return out
}

func insertVisits(t *testing.T, conn *client.Conn, n int) {
	t.Helper()
	ctx := context.Background()
	for i := 1; i <= n; i++ {
		place := "Dam 1"
		if i%2 == 0 {
			place = "Coolsingel 40"
		}
		res, err := conn.Exec(ctx, "INSERT INTO visits (id, who, place) VALUES (?, ?, ?)",
			value.Int(int64(i)), value.Text(fmt.Sprintf("user%d", i%5)), value.Text(place))
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if res.RowsAffected != 1 {
			t.Fatalf("insert %d affected %d rows", i, res.RowsAffected)
		}
	}
}

// TestRouterSingleKeyRouting proves writes land on exactly the shard the
// table owns, point reads find them through the router, and pk-less
// tables pin whole to one shard.
func TestRouterSingleKeyRouting(t *testing.T) {
	c := startCluster(t, 3)
	conn := dialRouter(t, c)
	ctx := context.Background()
	const n = 40
	insertVisits(t, conn, n)

	total := 0
	for idx, s := range c.shards {
		ids := shardIDs(t, s)
		total += len(ids)
		for _, id := range ids {
			if want := c.table.ShardForKey(value.Int(int64(id))); want != idx {
				t.Fatalf("id %d stored on shard %d, table owns it to %d", id, idx, want)
			}
		}
	}
	if total != n {
		t.Fatalf("shards hold %d rows total, want %d", total, n)
	}

	// Point SELECT routes to the owner (single-shard answer, no scatter).
	rows, err := conn.Query(ctx, "SELECT who FROM visits WHERE id = ?", value.Int(7))
	if err != nil || rows.Len() != 1 || rows.Data[0][0].Text() != "user2" {
		t.Fatalf("point select: rows=%v err=%v", rows, err)
	}

	// Keyed UPDATE and DELETE route the same way.
	if res, err := conn.Exec(ctx, "UPDATE visits SET who = ? WHERE id = ?",
		value.Text("renamed"), value.Int(7)); err != nil || res.RowsAffected != 1 {
		t.Fatalf("keyed update: %+v err=%v", res, err)
	}
	rows, err = conn.Query(ctx, "SELECT who FROM visits WHERE id = ?", value.Int(7))
	if err != nil || rows.Len() != 1 || rows.Data[0][0].Text() != "renamed" {
		t.Fatalf("update not visible: rows=%v err=%v", rows, err)
	}
	if res, err := conn.Exec(ctx, "DELETE FROM visits WHERE id = ?", value.Int(7)); err != nil || res.RowsAffected != 1 {
		t.Fatalf("keyed delete: %+v err=%v", res, err)
	}

	// Unkeyed UPDATE broadcasts and sums per-shard counts.
	res, err := conn.Exec(ctx, "UPDATE visits SET who = ? WHERE who = ?",
		value.Text("user0x"), value.Text("user0"))
	if err != nil {
		t.Fatalf("broadcast update: %v", err)
	}
	if res.RowsAffected != 8 { // ids 5,10,...,40 minus none named user0 deleted
		t.Fatalf("broadcast update affected %d rows, want 8", res.RowsAffected)
	}

	// pk-less table: all rows on the one owning shard.
	for i := 0; i < 6; i++ {
		if _, err := conn.Exec(ctx, "INSERT INTO logs (body) VALUES (?)",
			value.Text(fmt.Sprintf("line %d", i))); err != nil {
			t.Fatalf("logs insert: %v", err)
		}
	}
	owner := c.table.ShardForTable("logs")
	for idx, s := range c.shards {
		rows, err := s.db.NewConn().Query("SELECT body FROM logs")
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		if idx == owner {
			want = 6
		}
		if rows.Len() != want {
			t.Fatalf("shard %d holds %d logs rows, want %d", idx, rows.Len(), want)
		}
	}
	rows, err = conn.Query(ctx, "SELECT body FROM logs")
	if err != nil || rows.Len() != 6 {
		t.Fatalf("logs through router: %d rows err=%v", rows.Len(), err)
	}
}

// TestRouterScatterGather proves scans and aggregates recombine to
// exactly the single-node answer, and the merges the router cannot do
// exactly are refused rather than computed wrong.
func TestRouterScatterGather(t *testing.T) {
	c := startCluster(t, 3)
	conn := dialRouter(t, c)
	ctx := context.Background()
	const n = 30
	insertVisits(t, conn, n)

	rows, err := conn.Query(ctx, "SELECT id FROM visits ORDER BY id")
	if err != nil {
		t.Fatalf("scatter scan: %v", err)
	}
	if rows.Len() != n {
		t.Fatalf("scatter scan returned %d rows, want %d", rows.Len(), n)
	}
	for i, r := range rows.Data {
		if int(r[0].Int()) != i+1 {
			t.Fatalf("scatter ORDER BY broken at %d: %v", i, r[0])
		}
	}

	rows, err = conn.Query(ctx, "SELECT id FROM visits ORDER BY id DESC LIMIT 5")
	if err != nil || rows.Len() != 5 || rows.Data[0][0].Int() != n {
		t.Fatalf("scatter order/limit: rows=%v err=%v", rows, err)
	}

	rows, err = conn.Query(ctx, "SELECT COUNT(*), SUM(id), MIN(id), MAX(id) FROM visits")
	if err != nil || rows.Len() != 1 {
		t.Fatalf("scatter aggregates: rows=%v err=%v", rows, err)
	}
	got := rows.Data[0]
	if got[0].Int() != n || got[1].Int() != n*(n+1)/2 || got[2].Int() != 1 || got[3].Int() != n {
		t.Fatalf("scatter aggregates wrong: %v", got)
	}

	rows, err = conn.Query(ctx, "SELECT who, COUNT(*) FROM visits GROUP BY who")
	if err != nil {
		t.Fatalf("scatter group by: %v", err)
	}
	counts := map[string]int{}
	for _, r := range rows.Data {
		counts[r[0].Text()] = int(r[1].Int())
	}
	if len(counts) != 5 || counts["user0"] != 6 || counts["user4"] != 6 {
		t.Fatalf("scatter group by wrong: %v", counts)
	}

	// Refusals: merges that cannot be exact are errors, not wrong answers.
	for _, q := range []string{
		"SELECT who, COUNT(*) FROM visits GROUP BY who LIMIT 2",
		"BEGIN",
	} {
		if _, err := conn.Query(ctx, q); err == nil {
			t.Fatalf("%q should have been refused", q)
		}
	}
	if err := conn.Begin(ctx); err == nil {
		t.Fatal("OpBegin through the router should be refused")
	}
	if err := conn.Ping(ctx); err != nil {
		t.Fatalf("session should survive refusals: %v", err)
	}
}

// TestRouterAvgScatter proves AVG recombines exactly across shards via
// the SUM+COUNT partial rewrite: global and grouped averages match the
// single-node arithmetic, output columns keep the engine's naming,
// NULL-only groups answer NULL, and bound arguments survive the
// rewrite.
func TestRouterAvgScatter(t *testing.T) {
	c := startCluster(t, 3)
	conn := dialRouter(t, c)
	ctx := context.Background()
	const n = 30
	insertVisits(t, conn, n)

	rows, err := conn.Query(ctx, "SELECT AVG(id) FROM visits")
	if err != nil || rows.Len() != 1 {
		t.Fatalf("global AVG: rows=%v err=%v", rows, err)
	}
	if len(rows.Columns) != 1 || rows.Columns[0] != "avg(id)" {
		t.Fatalf("global AVG columns = %v, want [avg(id)]", rows.Columns)
	}
	if got := rows.Data[0][0].Float(); got != float64(n+1)/2 {
		t.Fatalf("global AVG = %v, want %v", got, float64(n+1)/2)
	}

	// Bound argument: the rewrite renders the bound literal, not the ?.
	rows, err = conn.Query(ctx, "SELECT AVG(id) AS a FROM visits WHERE id > ?", value.Int(20))
	if err != nil || rows.Len() != 1 || rows.Columns[0] != "a" {
		t.Fatalf("AVG with arg: rows=%v err=%v", rows, err)
	}
	if got := rows.Data[0][0].Float(); got != 25.5 { // mean of 21..30
		t.Fatalf("AVG(id) WHERE id > 20 = %v, want 25.5", got)
	}

	// Grouped AVG, mixed with other aggregates, ordered on the alias.
	rows, err = conn.Query(ctx,
		"SELECT who, AVG(id) AS a, COUNT(*) FROM visits GROUP BY who ORDER BY a DESC")
	if err != nil {
		t.Fatalf("grouped AVG: %v", err)
	}
	want := map[string][2]float64{}
	for i := 1; i <= n; i++ {
		who := fmt.Sprintf("user%d", i%5)
		w := want[who]
		want[who] = [2]float64{w[0] + float64(i), w[1] + 1}
	}
	if rows.Len() != len(want) {
		t.Fatalf("grouped AVG returned %d groups, want %d", rows.Len(), len(want))
	}
	prev := math.Inf(1)
	for _, r := range rows.Data {
		who, got, cnt := r[0].Text(), r[1].Float(), r[2].Int()
		w := want[who]
		if got != w[0]/w[1] || float64(cnt) != w[1] {
			t.Fatalf("group %s: avg=%v count=%d, want avg=%v count=%v", who, got, cnt, w[0]/w[1], w[1])
		}
		if got > prev {
			t.Fatalf("ORDER BY a DESC violated: %v after %v", got, prev)
		}
		prev = got
	}

	// NULL-only groups: AVG over no non-NULL input is NULL, exactly as a
	// single node answers; groups with values are unaffected.
	if _, err := conn.Exec(ctx, "CREATE TABLE m (id INT PRIMARY KEY, grp TEXT, v INT)"); err != nil {
		t.Fatalf("create m: %v", err)
	}
	for i, row := range []string{
		"(1, 'empty', NULL)", "(2, 'empty', NULL)", "(3, 'empty', NULL)",
		"(4, 'full', 10)", "(5, 'full', NULL)", "(6, 'full', 20)",
	} {
		if _, err := conn.Exec(ctx, "INSERT INTO m (id, grp, v) VALUES "+row); err != nil {
			t.Fatalf("insert m row %d: %v", i, err)
		}
	}
	rows, err = conn.Query(ctx, "SELECT grp, AVG(v) FROM m GROUP BY grp")
	if err != nil {
		t.Fatalf("NULL-group AVG: %v", err)
	}
	got := map[string]value.Value{}
	for _, r := range rows.Data {
		got[r[0].Text()] = r[1]
	}
	if !got["empty"].IsNull() {
		t.Fatalf("AVG over NULL-only group = %v, want NULL", got["empty"])
	}
	if v := got["full"]; v.IsNull() || v.Float() != 15 {
		t.Fatalf("AVG over full group = %v, want 15", v)
	}
	rows, err = conn.Query(ctx, "SELECT AVG(v) FROM m WHERE grp = 'empty'")
	if err != nil || rows.Len() != 1 || !rows.Data[0][0].IsNull() {
		t.Fatalf("global AVG over all-NULL rows: rows=%v err=%v, want one NULL", rows, err)
	}
}

// TestRouterPurposeEnforcement proves the purpose travels to every shard
// and is enforced there: the router itself never needs a purpose
// catalog.
func TestRouterPurposeEnforcement(t *testing.T) {
	c := startCluster(t, 3)
	full := dialRouter(t, c)
	ctx := context.Background()
	insertVisits(t, full, 12)

	precise := dialRouter(t, c, client.WithPurpose("precise"))
	rows, err := precise.Query(ctx, "SELECT place FROM visits WHERE id = ?", value.Int(3))
	if err != nil || rows.Len() != 1 || rows.Data[0][0].Text() != "Dam 1" {
		t.Fatalf("precise point read: rows=%v err=%v", rows, err)
	}
	rows, err = precise.Query(ctx, "SELECT id, place FROM visits ORDER BY id")
	if err != nil || rows.Len() != 12 {
		t.Fatalf("precise scatter: %d rows err=%v", rows.Len(), err)
	}

	// An unknown purpose passes the router handshake (no catalog there)
	// but fails on the first routed statement, at the shard.
	bogus := dialRouter(t, c, client.WithPurpose("no-such-purpose"))
	if _, err := bogus.Query(ctx, "SELECT id FROM visits WHERE id = ?", value.Int(1)); err == nil {
		t.Fatal("unknown purpose should fail at the shard")
	}

	// SET PURPOSE switches every downstream session.
	if _, err := full.Exec(ctx, "SELECT id, place FROM visits ORDER BY id"); err != nil {
		t.Fatalf("pre-switch scatter: %v", err)
	}
	if err := full.SetPurpose(ctx, "precise"); err != nil {
		t.Fatalf("set purpose via router: %v", err)
	}
	rows, err = full.Query(ctx, "SELECT place FROM visits WHERE id = ?", value.Int(4))
	if err != nil || rows.Len() != 1 || rows.Data[0][0].Text() != "Coolsingel 40" {
		t.Fatalf("post-switch read: rows=%v err=%v", rows, err)
	}
	if err := full.SetPurpose(ctx, "does-not-exist"); err == nil {
		t.Fatal("SET PURPOSE to unknown purpose should fail")
	}
}

// TestRouterStaleVersionFailsLoud proves the mixed-version guard: once
// any shard has served under a newer routing table, connections
// presenting the old one are rejected at the shard, and a router cannot
// even start with the stale table.
func TestRouterStaleVersionFailsLoud(t *testing.T) {
	c := startCluster(t, 3)
	ctx := context.Background()
	conn := dialRouter(t, c)
	insertVisits(t, conn, 10)

	// Shard 0 learns (and persists) version 99 out of band.
	direct, err := client.Dial(ctx, c.shards[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := direct.ShardCheck(ctx, 99); err != nil {
		t.Fatalf("bump shard version: %v", err)
	}
	direct.Close()

	// A fresh router with the v1 table must refuse to start.
	if _, err := shard.New(ctx, c.table, shard.Options{}); err == nil ||
		!strings.Contains(err.Error(), "refused table v1") {
		t.Fatalf("stale router start: err=%v, want shard-stale refusal", err)
	}

	// A fresh session through the live (now stale) router fails loud on
	// any statement that needs shard 0 — never misroutes silently.
	var idOnShard0 int64
	for id := int64(1); id <= 10; id++ {
		if c.table.ShardForKey(value.Int(id)) == 0 {
			idOnShard0 = id
			break
		}
	}
	if idOnShard0 == 0 {
		t.Fatal("no test id maps to shard 0")
	}
	fresh := dialRouter(t, c)
	if _, err := fresh.Query(ctx, "SELECT who FROM visits WHERE id = ?", value.Int(idOnShard0)); err == nil ||
		!strings.Contains(err.Error(), "refused table") {
		t.Fatalf("stale route should fail loud, got err=%v", err)
	}
}

// TestRouterMergedStats proves the aggregation rule: lag-style gauges
// take the max over shards, counters sum, and a dead shard is reported
// down without blocking the rollup.
func TestRouterMergedStats(t *testing.T) {
	c := startCluster(t, 3)
	conn := dialRouter(t, c)
	ctx := context.Background()
	insertVisits(t, conn, 9)

	stats, err := conn.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats["instantdb_router_shards"]; got != 3 {
		t.Fatalf("instantdb_router_shards = %v, want 3", got)
	}
	if got := stats["instantdb_router_table_version"]; got != 1 {
		t.Fatalf("instantdb_router_table_version = %v, want 1", got)
	}
	// Write counters sum across shards: at least the 9 routed inserts
	// (the counter is labeled by purpose, so sum the family).
	var writes float64
	for k, v := range stats {
		if strings.HasPrefix(k, "instantdb_writes_total") {
			writes += v
		}
	}
	if writes < 9 {
		t.Fatalf("summed instantdb_writes_total = %v, want >= 9", writes)
	}
	for _, s := range c.shards {
		key := fmt.Sprintf("instantdb_router_shard_up{shard=%q}", s.name)
		if got := stats[key]; got != 1 {
			t.Fatalf("%s = %v, want 1", key, got)
		}
	}
	if _, ok := stats["instantdb_router_degrade_lag_max_seconds"]; !ok {
		t.Fatal("max-lag rollup gauge missing from merged stats")
	}

	// Kill one shard's server: the rollup still answers, reporting it down.
	c.shards[2].srv.Close()
	stats, err = conn.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats[fmt.Sprintf("instantdb_router_shard_up{shard=%q}", c.shards[2].name)]; got != 0 {
		t.Fatalf("dead shard reported up: %v", got)
	}
}

// TestRouterSchemaMirror proves OpSchema through the router reflects the
// shards' DDL, including DDL broadcast after start.
func TestRouterSchemaMirror(t *testing.T) {
	c := startCluster(t, 2)
	conn := dialRouter(t, c)
	ctx := context.Background()

	script, err := conn.Schema(ctx)
	if err != nil || !strings.Contains(strings.ToUpper(script), "CREATE TABLE") {
		t.Fatalf("router schema: %q err=%v", script, err)
	}
	if _, err := conn.Exec(ctx, "CREATE TABLE extra (k INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatalf("broadcast DDL: %v", err)
	}
	// The new table routes immediately (schema mirror updated in place).
	if _, err := conn.Exec(ctx, "INSERT INTO extra (k, v) VALUES (?, ?)",
		value.Int(1), value.Text("x")); err != nil {
		t.Fatalf("insert into broadcast-created table: %v", err)
	}
	found := 0
	for _, s := range c.shards {
		rows, err := s.db.NewConn().Query("SELECT k FROM extra")
		if err != nil {
			t.Fatalf("extra missing on a shard: %v", err)
		}
		found += rows.Len()
	}
	if found != 1 {
		t.Fatalf("broadcast-created table holds %d rows across shards, want 1", found)
	}
}
