package shard

import (
	"fmt"
	"sort"
	"strings"

	"instantdb/internal/query"
	"instantdb/internal/value"
	"instantdb/internal/wire"
)

// mergeSelect recombines per-shard result sets of a scattered SELECT
// into the rows a single-node execution would have produced: plain scans
// concatenate, aggregates recombine (COUNT/SUM add, MIN/MAX compare —
// AVG was rewritten into SUM+COUNT partials before the fan-out, see
// avg.go), grouped results merge by group key, and
// ORDER BY/LIMIT re-apply at the router with the engine's own comparison
// semantics. Each shard's rows arrive already purpose-enforced and
// degradation-filtered by its own clock, so the merge never re-evaluates
// accuracy — per-shard degradation states surface as-is.
func mergeSelect(s *query.Select, parts []*wire.Rows) (*wire.Rows, error) {
	var cols []string
	for _, p := range parts {
		if p == nil {
			continue
		}
		if cols == nil {
			cols = p.Columns
			continue
		}
		if len(p.Columns) != len(cols) {
			return nil, fmt.Errorf("shard: scatter column mismatch: %v vs %v", cols, p.Columns)
		}
		for i := range cols {
			if !strings.EqualFold(cols[i], p.Columns[i]) {
				return nil, fmt.Errorf("shard: scatter column mismatch: %v vs %v", cols, p.Columns)
			}
		}
	}
	out := &wire.Rows{Columns: cols}
	hasAgg := false
	for _, it := range s.Items {
		if it.Agg != query.AggNone {
			hasAgg = true
		}
	}

	if !hasAgg && len(s.GroupBy) == 0 {
		for _, p := range parts {
			if p != nil {
				out.Data = append(out.Data, p.Data...)
			}
		}
		return out, orderAndLimit(s, out)
	}

	// Aggregated/grouped recombination. Items align 1:1 with output
	// columns (the planner refused * with aggregates via the engine, and
	// grouping columns must be selected).
	if len(s.Items) != len(cols) && cols != nil {
		return nil, fmt.Errorf("shard: aggregate output width %d != %d items", len(cols), len(s.Items))
	}
	type group struct {
		row []value.Value
		set []bool // per aggregate column: any non-null contribution yet
	}
	groups := make(map[string]*group)
	var order []string
	keyIdx := groupKeyIndexes(s)
	for _, p := range parts {
		if p == nil {
			continue
		}
		for _, row := range p.Data {
			var enc []byte
			for _, ki := range keyIdx {
				enc = value.Encode(enc, row[ki])
			}
			g, ok := groups[string(enc)]
			if !ok {
				g = &group{row: append([]value.Value(nil), row...), set: make([]bool, len(row))}
				for i := range row {
					if s.Items[i].Agg != query.AggNone && !row[i].IsNull() {
						g.set[i] = true
					}
				}
				groups[string(enc)] = g
				order = append(order, string(enc))
				continue
			}
			for i, it := range s.Items {
				if it.Agg == query.AggNone {
					continue
				}
				merged, isSet, err := combineAgg(it.Agg, g.row[i], g.set[i], row[i])
				if err != nil {
					return nil, err
				}
				g.row[i], g.set[i] = merged, isSet
			}
		}
	}
	for _, k := range order {
		out.Data = append(out.Data, groups[k].row)
	}
	// COUNT over zero shards contributing still answers 0, matching a
	// single-node COUNT over an empty table.
	if len(out.Data) == 0 && len(s.GroupBy) == 0 && hasAgg {
		row := make([]value.Value, len(s.Items))
		for i, it := range s.Items {
			if it.Agg == query.AggCount {
				row[i] = value.Int(0)
			} else {
				row[i] = value.Null()
			}
		}
		out.Data = append(out.Data, row)
	}
	return out, orderAndLimit(s, out)
}

// groupKeyIndexes returns the output-column positions holding the GROUP
// BY key (empty for global aggregates — everything merges into one row).
func groupKeyIndexes(s *query.Select) []int {
	var idx []int
	for _, g := range s.GroupBy {
		for i, it := range s.Items {
			if it.Agg == query.AggNone && it.Col != nil && strings.EqualFold(it.Col.Column, g.Column) {
				idx = append(idx, i)
				break
			}
		}
	}
	return idx
}

// combineAgg folds one shard's aggregate cell into the running merged
// cell. NULL cells (SUM/MIN/MAX over an empty shard) contribute nothing.
func combineAgg(fn query.AggFunc, acc value.Value, accSet bool, v value.Value) (value.Value, bool, error) {
	if v.IsNull() {
		return acc, accSet, nil
	}
	if !accSet {
		return v, true, nil
	}
	switch fn {
	case query.AggCount, query.AggSum:
		if acc.Kind() == value.KindInt && v.Kind() == value.KindInt {
			return value.Int(acc.Int() + v.Int()), true, nil
		}
		a, okA := acc.AsFloat()
		b, okB := v.AsFloat()
		if !okA || !okB {
			return acc, accSet, fmt.Errorf("shard: cannot combine %s cells %s and %s", aggLabel(fn), acc.Kind(), v.Kind())
		}
		return value.Float(a + b), true, nil
	case query.AggMin:
		if c, err := value.Compare(v, acc); err != nil {
			return acc, accSet, err
		} else if c < 0 {
			return v, true, nil
		}
		return acc, true, nil
	case query.AggMax:
		if c, err := value.Compare(v, acc); err != nil {
			return acc, accSet, err
		} else if c > 0 {
			return v, true, nil
		}
		return acc, true, nil
	}
	return acc, accSet, fmt.Errorf("shard: cannot combine aggregate %d across shards", fn)
}

func aggLabel(fn query.AggFunc) string {
	switch fn {
	case query.AggCount:
		return "COUNT"
	case query.AggSum:
		return "SUM"
	case query.AggMin:
		return "MIN"
	case query.AggMax:
		return "MAX"
	}
	return "AGG"
}

// orderAndLimit re-applies ORDER BY and LIMIT on the merged rows with
// the same semantics as the engine's executor: ORDER BY columns resolve
// case-insensitively against the output columns, the sort is stable, and
// LIMIT truncates after the sort.
func orderAndLimit(s *query.Select, rows *wire.Rows) error {
	if len(s.Order) > 0 {
		idx := make([]int, len(s.Order))
		for i, ob := range s.Order {
			found := -1
			for ci, name := range rows.Columns {
				if strings.EqualFold(name, ob.Col.Column) {
					found = ci
					break
				}
			}
			if found == -1 {
				return fmt.Errorf("shard: ORDER BY column %s not in output", ob.Col.Column)
			}
			idx[i] = found
		}
		var sortErr error
		sort.SliceStable(rows.Data, func(a, b int) bool {
			for i, ci := range idx {
				cmp, err := value.Compare(rows.Data[a][ci], rows.Data[b][ci])
				if err != nil {
					sortErr = err
					return false
				}
				if cmp != 0 {
					if s.Order[i].Desc {
						return cmp > 0
					}
					return cmp < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return sortErr
		}
	}
	if s.Limit >= 0 && len(rows.Data) > s.Limit {
		rows.Data = rows.Data[:s.Limit]
	}
	return nil
}
