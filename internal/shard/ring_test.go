package shard_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"instantdb/internal/shard"
	"instantdb/internal/value"
)

func threeShards() []shard.Info {
	return []shard.Info{
		{Name: "s0", Addr: "127.0.0.1:9000"},
		{Name: "s1", Addr: "127.0.0.1:9001"},
		{Name: "s2", Addr: "127.0.0.1:9002"},
	}
}

// TestRingDeterminism pins the property everything else rests on: the
// same key maps to the same shard on every table instance — across
// rebuilds, clones and a save/load round trip (restarts).
func TestRingDeterminism(t *testing.T) {
	a := shard.Uniform(threeShards())
	b := shard.Uniform(threeShards())
	path := filepath.Join(t.TempDir(), "routing.json")
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := shard.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 2000; i++ {
		k := value.Int(i)
		if a.ShardForKey(k) != b.ShardForKey(k) || a.ShardForKey(k) != loaded.ShardForKey(k) {
			t.Fatalf("key %d routes differently across table instances", i)
		}
	}
	for _, name := range []string{"visits", "logs", "VISITS"} {
		if a.ShardForTable(name) != loaded.ShardForTable(name) {
			t.Fatalf("table %q routes differently after reload", name)
		}
	}
	// Case-insensitive table pinning: VISITS and visits are one table.
	if a.ShardForTable("visits") != a.ShardForTable("VISITS") {
		t.Fatal("table pinning is case-sensitive")
	}
	// Text and int keys both route; different key kinds hash independently.
	if got := a.ShardForKey(value.Text("alice")); got < 0 || got > 2 {
		t.Fatalf("text key routed to %d", got)
	}
}

// TestRingUniformSpread sanity-checks the version-1 slot assignment:
// contiguous ranges, every shard owns a third of the slot space.
func TestRingUniformSpread(t *testing.T) {
	tab := shard.Uniform(threeShards())
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		n := len(tab.SlotsOf(i))
		if n < shard.DefaultSlots/3-1 || n > shard.DefaultSlots/3+1 {
			t.Fatalf("shard %d owns %d slots, want ~%d", i, n, shard.DefaultSlots/3)
		}
	}
}

// TestRingSplitMovesOnlySplitRange is the rebalance math: bumping the
// version with SplitOff moves exactly the reported slots, and only keys
// hashing into those slots change owner.
func TestRingSplitMovesOnlySplitRange(t *testing.T) {
	v1 := shard.Uniform(threeShards())
	v2, moved := v1.SplitOff(1, shard.Info{Name: "s3", Addr: "127.0.0.1:9003"})
	if v2.Version != v1.Version+1 {
		t.Fatalf("split bumped version to %d, want %d", v2.Version, v1.Version+1)
	}
	if len(v2.Shards) != 4 || v2.Shards[3].Name != "s3" {
		t.Fatalf("split shard list: %+v", v2.Shards)
	}
	if err := v2.Validate(); err != nil {
		t.Fatal(err)
	}
	// MovedSlots agrees with the split's own report.
	gotMoved := v1.MovedSlots(v2)
	if fmt.Sprint(gotMoved) != fmt.Sprint(moved) {
		t.Fatalf("MovedSlots %v != split report %v", gotMoved, moved)
	}
	// Half (±1) of the source's slots moved, all to the new shard.
	if want := len(v1.SlotsOf(1)) / 2; len(moved) != want && len(moved) != want+1 {
		t.Fatalf("split moved %d slots, want ~%d", len(moved), want)
	}
	movedSet := make(map[int]bool, len(moved))
	for _, s := range moved {
		if v1.Assign[s] != 1 || v2.Assign[s] != 3 {
			t.Fatalf("slot %d moved %d→%d, want 1→3", s, v1.Assign[s], v2.Assign[s])
		}
		movedSet[s] = true
	}
	// Every key either keeps its owner or sits in a moved slot.
	for i := int64(0); i < 5000; i++ {
		k := value.Int(i)
		before, after := v1.ShardForKey(k), v2.ShardForKey(k)
		if before != after && !movedSet[v1.Slot(k)] {
			t.Fatalf("key %d changed owner %d→%d outside the split range", i, before, after)
		}
		if movedSet[v1.Slot(k)] && after != 3 {
			t.Fatalf("key %d in a moved slot routed to %d, want 3", i, after)
		}
	}
}

// TestRingValidate exercises the structural checks a hand-edited routing
// table could trip.
func TestRingValidate(t *testing.T) {
	good := shard.Uniform(threeShards())
	bad := good.Clone()
	bad.Assign[17] = 9
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
	bad = good.Clone()
	bad.Shards[1].Name = "s0"
	if err := bad.Validate(); err == nil {
		t.Fatal("duplicate shard name accepted")
	}
	bad = good.Clone()
	bad.Assign = bad.Assign[:100]
	if err := bad.Validate(); err == nil {
		t.Fatal("truncated assignment accepted")
	}
	if err := (&shard.Table{Version: 1}).Validate(); err == nil {
		t.Fatal("empty table accepted")
	}
}
