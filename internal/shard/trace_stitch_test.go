package shard_test

import (
	"context"
	"testing"
	"time"

	"instantdb/client"
	"instantdb/internal/trace"
)

// dumpStitched polls the router for the trace until it has stitched at
// least want spans (shards finish their records asynchronously, after
// their responses to the router are already on the wire) or the
// deadline passes; it returns the last dump either way.
func dumpStitched(t *testing.T, conn *client.Conn, tid uint64, want int) *trace.Rec {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(5 * time.Second)
	var rec *trace.Rec
	for {
		recs, err := conn.TraceDump(ctx, client.TraceByID, tid)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 1 {
			rec = recs[0]
			if len(rec.Spans) >= want {
				return rec
			}
		} else if len(recs) > 1 {
			t.Fatalf("TraceByID returned %d records, want at most 1", len(recs))
		}
		if time.Now().After(deadline) {
			if rec == nil {
				t.Fatalf("trace %016x never appeared", tid)
			}
			return rec
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// spansNamed returns the spans with the given name.
func spansNamed(rec *trace.Rec, name string) []trace.Span {
	var out []trace.Span
	for _, sp := range rec.Spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

// TestTracedScatterStitch is the tentpole acceptance test for
// cross-shard tracing: one forced trace on a scatter SELECT through the
// router must dump as ONE record whose spans span both services and
// link up — each shard's server-side root hangs under the router span
// that dialed it.
func TestTracedScatterStitch(t *testing.T) {
	c := startCluster(t, 3)
	conn := dialRouter(t, c)
	ctx := context.Background()
	insertVisits(t, conn, 12)

	res, tid, err := conn.ExecTraced(ctx, "SELECT id FROM visits ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if tid == 0 {
		t.Fatal("ExecTraced allocated trace id 0")
	}
	if res.Rows == nil || res.Rows.Len() != 12 {
		t.Fatalf("scatter select returned %v rows, want 12", res.Rows)
	}

	// Router root + plan + merge + 3 shard_exec, plus 3 shard-side
	// serve_exec roots: the stitched record has at least 9 spans.
	rec := dumpStitched(t, conn, tid, 9)
	if rec.TraceID != tid {
		t.Fatalf("stitched TraceID = %016x, want %016x", rec.TraceID, tid)
	}

	services := map[string]int{}
	for _, sp := range rec.Spans {
		if sp.TraceID != tid {
			t.Fatalf("span %q carries trace id %016x, want %016x", sp.Name, sp.TraceID, tid)
		}
		services[sp.Service]++
	}
	if services["router"] == 0 || services["server"] == 0 {
		t.Fatalf("stitched record misses a service: %v", services)
	}

	roots := spansNamed(rec, "route_exec")
	if len(roots) != 1 || roots[0].ParentID != 0 {
		t.Fatalf("route_exec roots = %+v, want exactly one with ParentID 0", roots)
	}
	if len(spansNamed(rec, "plan")) == 0 {
		t.Fatal("no plan span recorded")
	}
	if len(spansNamed(rec, "merge")) != 1 {
		t.Fatalf("merge spans = %d, want 1", len(spansNamed(rec, "merge")))
	}

	scatter := spansNamed(rec, "shard_exec")
	if len(scatter) != 3 {
		t.Fatalf("shard_exec spans = %d, want one per shard (3)", len(scatter))
	}
	scatterIDs := map[uint64]bool{}
	for _, sp := range scatter {
		if sp.Service != "router" {
			t.Fatalf("shard_exec recorded by %q, want router", sp.Service)
		}
		scatterIDs[sp.SpanID] = true
	}

	serves := spansNamed(rec, "serve_exec")
	if len(serves) != 3 {
		t.Fatalf("serve_exec spans = %d, want one per shard (3)", len(serves))
	}
	for _, sp := range serves {
		if sp.Service != "server" {
			t.Fatalf("serve_exec recorded by %q, want server", sp.Service)
		}
		// The stitching point: the shard's root is parented under the
		// router span whose id rode the wire in OpTraced.
		if !scatterIDs[sp.ParentID] {
			t.Fatalf("serve_exec parent %016x matches no shard_exec span", sp.ParentID)
		}
	}
}

// TestTracedInsertThroughRouter proves a traced single-key write
// propagates into the owning shard's commit pipeline: the stitched
// record contains the WAL append span decomposed into the group-commit
// phases, recorded on the shard.
func TestTracedInsertThroughRouter(t *testing.T) {
	c := startCluster(t, 3)
	conn := dialRouter(t, c)
	ctx := context.Background()

	_, tid, err := conn.ExecTraced(ctx,
		"INSERT INTO visits (id, who, place) VALUES (501, 'anciaux', 'Dam 1')")
	if err != nil {
		t.Fatal(err)
	}

	// route_exec + plan + shard_exec on the router; serve_exec +
	// wal_encode + wal_append + group_enqueue + group_fsync + publish
	// on the shard.
	rec := dumpStitched(t, conn, tid, 9)

	appends := spansNamed(rec, "wal_append")
	if len(appends) != 1 || appends[0].Service != "server" {
		t.Fatalf("wal_append spans = %+v, want exactly one from the shard", appends)
	}
	for _, phase := range []string{"group_enqueue", "group_fsync"} {
		sps := spansNamed(rec, phase)
		if len(sps) != 1 {
			t.Fatalf("%s spans = %d, want 1", phase, len(sps))
		}
		if sps[0].ParentID != appends[0].SpanID {
			t.Fatalf("%s parent = %016x, want the wal_append span %016x",
				phase, sps[0].ParentID, appends[0].SpanID)
		}
	}
	if len(spansNamed(rec, "publish")) != 1 {
		t.Fatal("no publish span recorded on the shard")
	}
}

// TestRouterAuditTailMergesShards proves the router's OpAuditTail
// answer merges every shard's trail in event-time order: after inserts
// land on all three shards, the merged tail carries each shard's
// EvScheduled events with non-decreasing timestamps.
func TestRouterAuditTailMergesShards(t *testing.T) {
	c := startCluster(t, 3)
	conn := dialRouter(t, c)
	ctx := context.Background()
	insertVisits(t, conn, 12)

	evs, err := conn.AuditTail(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Each insert schedules one attribute transition and one
	// tuple-delete event on its owning shard.
	if len(evs) < 24 {
		t.Fatalf("merged audit tail has %d events, want >= 24", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].UnixNano < evs[i-1].UnixNano {
			t.Fatalf("merged tail out of order at %d: %d after %d",
				i, evs[i].UnixNano, evs[i-1].UnixNano)
		}
	}
	scheduled := 0
	for _, ev := range evs {
		if ev.Kind == trace.EvScheduled && ev.Table == "visits" {
			scheduled++
		}
	}
	if scheduled < 12 {
		t.Fatalf("merged tail carries %d visits EvScheduled events, want >= 12", scheduled)
	}
}
