package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"instantdb/client"
	"instantdb/internal/backup"
	"instantdb/internal/engine"
	"instantdb/internal/repl"
	"instantdb/internal/wal"
	"instantdb/internal/wire"
)

// BootstrapOptions configures one online shard bootstrap.
type BootstrapOptions struct {
	// SourceAddr is the wire address of the shard being split: the
	// backup archive, the epoch keys and the WAL tail all stream from it.
	SourceAddr string
	// Dir is the new shard's database directory (must not exist; the
	// restore builds it atomically).
	Dir string
	// Config templates the new shard's engine configuration (Clock,
	// degradation options, shred bucket). Dir and Replica are overridden.
	Config engine.Config
	// MaxFrame bounds wire frames to the source (default
	// wire.MaxFrameDefault).
	MaxFrame int
	// DrainPoll is how often Drain re-checks the applied position
	// (default 10ms).
	DrainPoll time.Duration
	// Logf receives diagnostics when non-nil.
	Logf func(format string, args ...any)
}

// Bootstrap is an in-flight online shard bootstrap: a restored copy of
// the source shard tailing the source's WAL as a replica, waiting for
// the cutover. The sequence is the one ISSUE/DESIGN document:
//
//	Begin  → backup + key export stream into a fresh directory (the
//	         source keeps serving; the archive pins a snapshot epoch)
//	       → the directory opens as a replica whose follower resumes at
//	         the archive's exact end position (no gap, no overlap)
//	Drain  → router paused; wait until the replica has applied
//	         everything the source has written
//	Promote→ stop the tail, reopen the directory as a leader
//	       → Trim both sides to the new routing table, Flip, Resume
//
// The new shard's degradation clock is its own from the moment the
// directory opens: deadlines that pass mid-bootstrap fire on the replica
// locally (PR 4's autonomous-clock rule), so even the bootstrap window
// never delays an expiry.
type Bootstrap struct {
	// DB is the bootstrapping database: a replica until Promote, the new
	// shard's leader after.
	DB *engine.DB
	// Follower tails the source WAL until Promote.
	Follower *repl.Follower
	// BaseEnd is the source log position the restored archive covered;
	// the follower resumed there.
	BaseEnd wal.Pos

	opts     BootstrapOptions
	promoted bool
}

// Begin streams a backup and the epoch keys from the source shard,
// restores them into opts.Dir, opens the directory as a replica and
// starts tailing the source's WAL. The source serves normally
// throughout.
func Begin(ctx context.Context, opts BootstrapOptions) (*Bootstrap, error) {
	if opts.SourceAddr == "" || opts.Dir == "" {
		return nil, errors.New("shard: bootstrap needs SourceAddr and Dir")
	}
	if opts.DrainPoll <= 0 {
		opts.DrainPoll = 10 * time.Millisecond
	}
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = wire.MaxFrameDefault
	}
	parent := filepath.Dir(opts.Dir)
	if err := os.MkdirAll(parent, 0o700); err != nil {
		return nil, err
	}

	// 1. Stream the archive and the epoch keys to spool files. The keys
	// travel separately from the archive on purpose: the archive holds
	// only sealed payloads (safe at backup trust level), the key file is
	// live secret material the restored replica needs to serve reads.
	arch, err := os.CreateTemp(parent, "bootstrap-archive-*")
	if err != nil {
		return nil, err
	}
	defer func() { arch.Close(); os.Remove(arch.Name()) }()
	keys, err := os.CreateTemp(parent, "bootstrap-keys-*")
	if err != nil {
		return nil, err
	}
	defer func() { keys.Close(); os.Remove(keys.Name()) }()

	c, err := client.Dial(ctx, opts.SourceAddr, client.WithMaxFrame(opts.MaxFrame))
	if err != nil {
		return nil, fmt.Errorf("shard: bootstrap dial source: %w", err)
	}
	_, err = c.Backup(ctx, arch)
	if err == nil {
		err = c.ExportKeys(ctx, keys)
	}
	c.Close()
	if err != nil {
		return nil, fmt.Errorf("shard: bootstrap stream from source: %w", err)
	}
	if _, err := arch.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}

	// 2. Restore into the target directory (atomic promote-by-rename).
	sum, err := backup.Restore(backup.RestoreOptions{Dir: opts.Dir, KeysPath: keys.Name()}, arch)
	if err != nil {
		return nil, fmt.Errorf("shard: bootstrap restore: %w", err)
	}

	// 3. Seed the replication resume position with the archive's end, so
	// the WAL tail starts exactly one byte past the archived material —
	// the no-gap/no-overlap point the bootstrap test pins down.
	if err := os.WriteFile(filepath.Join(opts.Dir, "repl.pos"), []byte(sum.End.String()), 0o600); err != nil {
		return nil, err
	}

	// 4. Open as a replica on its own clock and tail the source.
	cfg := opts.Config
	cfg.Dir = opts.Dir
	cfg.Replica = true
	db, err := engine.Open(cfg)
	if err != nil {
		return nil, fmt.Errorf("shard: bootstrap open replica: %w", err)
	}
	f := &repl.Follower{Addr: opts.SourceAddr, DB: db, MaxFrame: opts.MaxFrame, Logf: opts.Logf}
	f.Start()
	return &Bootstrap{DB: db, Follower: f, BaseEnd: sum.End, opts: opts}, nil
}

// Drain blocks until the replica has applied everything the source had
// written when Drain asked — call it with the router paused, so the
// position cannot advance underneath the cutover. The source's current
// log end is learned by asking for an incremental backup from the
// replica's own position into a discarded stream (its summary carries
// the exact end position; the bytes are the tail the follower is
// applying anyway, typically nothing).
func (b *Bootstrap) Drain(ctx context.Context) error {
	c, err := client.Dial(ctx, b.opts.SourceAddr, client.WithMaxFrame(b.opts.MaxFrame))
	if err != nil {
		return fmt.Errorf("shard: drain dial source: %w", err)
	}
	pos := b.DB.ReplPos()
	info, err := c.BackupIncremental(ctx, uint64(pos.Seg), uint64(pos.Off), io.Discard)
	c.Close()
	if err != nil {
		return fmt.Errorf("shard: drain learn source end: %w", err)
	}
	target := wal.Pos{Seg: int(info.EndSeg), Off: int64(info.EndOff)}
	for b.DB.ReplPos().Before(target) {
		if err := b.Follower.Err(); err != nil {
			return fmt.Errorf("shard: drain: follower failed: %w", err)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("shard: drain to %s stalled at %s: %w", target, b.DB.ReplPos(), ctx.Err())
		case <-time.After(b.opts.DrainPoll):
		}
	}
	return nil
}

// Promote ends the tail and reopens the directory as a leader. After
// Promote, b.DB is the new shard's serving database.
func (b *Bootstrap) Promote() (*engine.DB, error) {
	if b.promoted {
		return b.DB, nil
	}
	b.Follower.Stop()
	if err := b.DB.Close(); err != nil {
		return nil, err
	}
	cfg := b.opts.Config
	cfg.Dir = b.opts.Dir
	cfg.Replica = false
	db, err := engine.Open(cfg)
	if err != nil {
		return nil, fmt.Errorf("shard: promote reopen as leader: %w", err)
	}
	b.DB = db
	b.promoted = true
	return db, nil
}

// Abort tears down an unpromoted bootstrap (follower, database, and the
// restored directory).
func (b *Bootstrap) Abort() {
	if b.promoted {
		return
	}
	b.Follower.Stop()
	b.DB.Close()
	os.RemoveAll(b.opts.Dir)
}

// Trim deletes every row a shard does not own under routing table t —
// run on both sides of a split after Promote, before Flip. The session
// runs coarse (§IV best-effort) so degraded rows are visible and move
// with their keys; expired attributes are already erased on both sides
// and stay erased. Returns the number of rows removed.
func Trim(db *engine.DB, t *Table, shardIdx int) (int, error) {
	conn := db.NewConn()
	conn.SetCoarse(true)
	removed := 0
	for _, tbl := range db.Catalog().Tables() {
		if tbl.PrimaryKey < 0 {
			// A pk-less table lives whole on one shard.
			if t.ShardForTable(tbl.Name) != shardIdx {
				res, err := conn.Exec("DELETE FROM " + tbl.Name)
				if err != nil {
					return removed, fmt.Errorf("shard: trim %s: %w", tbl.Name, err)
				}
				removed += res.RowsAffected
			}
			continue
		}
		pk := tbl.Columns[tbl.PrimaryKey].Name
		rows, err := conn.Query("SELECT " + pk + " FROM " + tbl.Name)
		if err != nil {
			return removed, fmt.Errorf("shard: trim scan %s: %w", tbl.Name, err)
		}
		for _, row := range rows.Data {
			if t.ShardForKey(row[0]) == shardIdx {
				continue
			}
			res, err := conn.Exec("DELETE FROM "+tbl.Name+" WHERE "+pk+" = ?", row[0])
			if err != nil {
				return removed, fmt.Errorf("shard: trim %s key %v: %w", tbl.Name, row[0], err)
			}
			removed += res.RowsAffected
		}
	}
	return removed, nil
}
