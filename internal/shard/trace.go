package shard

import (
	"context"
	"fmt"
	"net"
	"sort"

	"instantdb/internal/trace"
	"instantdb/internal/wire"
)

// serveTraced unwraps a client-forced trace (OpTraced): the inner
// statement runs with the router's spans rooted under the caller's
// span, and every shard it touches receives the same trace id — the
// one stitched tree a later TraceByID dump reassembles.
func (r *Router) serveTraced(nc net.Conn, ss *rsession, trd wire.Traced) bool {
	tt, root := r.tracer.StartRemote(trd.TraceID, trd.ParentSpanID, "route_"+routerOpName(trd.Op))
	defer root.End()
	switch trd.Op {
	case wire.OpExec, wire.OpQuery:
		sql := string(trd.Payload)
		root.Attr("sql", sql)
		return r.execSQLTraced(nc, ss, sql, nil, tt, root)
	case wire.OpExecArgs:
		sql, args, err := wire.DecodeExecArgs(trd.Payload)
		if err != nil {
			r.fail(nc, wire.CodeProtocol, err.Error())
			return false
		}
		root.Attr("sql", sql)
		return r.execSQLTraced(nc, ss, sql, args, tt, root)
	default:
		return r.sendErr(nc, wire.CodeSQL,
			fmt.Errorf("router: OpTraced wraps unsupported opcode %#x", trd.Op))
	}
}

// serveTraceDump answers OpTraceDump. Ring modes (recent, slow) read
// the router's own rings — per-process views, exactly like asking one
// shard. TraceByID instead stitches: the router's record plus a by-id
// dump from every shard merge into one record whose spans link up via
// the remote parent ids planted at scatter time. A shard that cannot
// answer is skipped (logged) — a partial tree of a diagnostic dump
// beats no tree; the audit path below makes the opposite choice.
func (r *Router) serveTraceDump(nc net.Conn, ss *rsession, mode byte, id uint64) bool {
	switch mode {
	case wire.TraceRecent:
		return r.sendTraceData(nc, r.tracer.Recent())
	case wire.TraceSlow:
		return r.sendTraceData(nc, r.tracer.SlowTraces())
	}
	var rec *trace.Rec
	if lr := r.tracer.ByID(id); lr != nil {
		cp := *lr
		cp.Spans = append([]trace.Span(nil), lr.Spans...)
		rec = &cp
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.RequestTimeout)
	defer cancel()
	t := r.currentTable()
	for idx := range t.Shards {
		c, err := ss.conn(ctx, t, idx)
		if err != nil {
			r.logf("trace dump: shard %s skipped: %v", t.Shards[idx].Name, err)
			continue
		}
		recs, err := c.TraceDump(ctx, wire.TraceByID, id)
		if err != nil {
			r.logf("trace dump: shard %s skipped: %v", t.Shards[idx].Name, err)
			continue
		}
		for _, sr := range recs {
			if rec == nil {
				cp := *sr
				rec = &cp
			} else {
				rec.Spans = append(rec.Spans, sr.Spans...)
			}
		}
	}
	var out []*trace.Rec
	if rec != nil {
		out = []*trace.Rec{rec}
	}
	return r.sendTraceData(nc, out)
}

func (r *Router) sendTraceData(nc net.Conn, recs []*trace.Rec) bool {
	return wire.WriteFrame(nc, wire.OpTraceData, wire.EncodeTraceRecs(recs)) == nil
}

// serveAuditTail merges the audit tails of every shard, ordered by
// event time (sequence numbers are per-shard and would collide). An
// unreachable shard fails the request: an audit answer that silently
// omits a shard's degradation evidence would be worse than no answer.
func (r *Router) serveAuditTail(nc net.Conn, ss *rsession, n uint64) bool {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.RequestTimeout)
	defer cancel()
	t := r.currentTable()
	var all []trace.Event
	for idx := range t.Shards {
		c, err := ss.conn(ctx, t, idx)
		if err != nil {
			return r.sendErr(nc, wire.CodeSQL, err)
		}
		evs, err := c.AuditTail(ctx, int(n))
		if err != nil {
			return r.forwardErr(nc, ss, idx, fmt.Errorf("shard %s: %w", t.Shards[idx].Name, err))
		}
		all = append(all, evs...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].UnixNano < all[j].UnixNano })
	if n > 0 && uint64(len(all)) > n {
		all = all[uint64(len(all))-n:]
	}
	return wire.WriteFrame(nc, wire.OpAuditData, wire.EncodeAuditEvents(all)) == nil
}
