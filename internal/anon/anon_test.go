package anon

import (
	"testing"

	"instantdb/internal/gentree"
	"instantdb/internal/vclock"
	"instantdb/internal/workload"
)

func dataset(n int) (*gentree.Tree, *gentree.IntRange, []workload.Person) {
	uni := workload.NewLocationUniverse(2, 2, 2, 4)
	gen := workload.NewPersonGen(7, uni, vclock.Epoch)
	return uni.Tree, gentree.Figure2Salary(), gen.Batch(n)
}

func TestGeneralizeReachesK(t *testing.T) {
	tree, sal, people := dataset(500)
	for _, k := range []int{2, 5, 25} {
		res, err := Generalize(tree, sal, people, k)
		if err != nil {
			t.Fatal(err)
		}
		if res.MinClass < k && res.Suppressed == 0 {
			t.Fatalf("k=%d: min class %d without suppression", k, res.MinClass)
		}
		if res.Precision < 0 || res.Precision > 1 {
			t.Fatalf("k=%d: precision %v out of range", k, res.Precision)
		}
	}
}

func TestGeneralizePrecisionDecreasesWithK(t *testing.T) {
	tree, sal, people := dataset(400)
	r5, err := Generalize(tree, sal, people, 5)
	if err != nil {
		t.Fatal(err)
	}
	r50, err := Generalize(tree, sal, people, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r50.Precision > r5.Precision {
		t.Fatalf("precision should not increase with k: k=5→%v k=50→%v", r5.Precision, r50.Precision)
	}
}

func TestGeneralizeEdgeCases(t *testing.T) {
	tree, sal, _ := dataset(0)
	if _, err := Generalize(tree, sal, nil, 0); err == nil {
		t.Fatal("k=0 should fail")
	}
	res, err := Generalize(tree, sal, nil, 5)
	if err != nil || res.Precision != 1 {
		t.Fatalf("empty dataset: %+v err=%v", res, err)
	}
	// k larger than the dataset: even the root level fails; everything
	// suppressed.
	uni := workload.NewLocationUniverse(1, 1, 1, 2)
	gen := workload.NewPersonGen(1, uni, vclock.Epoch)
	few := gen.Batch(3)
	res, err = Generalize(uni.Tree, sal, few, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Suppressed != 3 {
		t.Fatalf("want all 3 suppressed, got %d", res.Suppressed)
	}
}

func TestUtilityComparison(t *testing.T) {
	// The paper's usability claim in numbers: degradation keeps donor
	// queries at 100% while anonymization zeroes them.
	tree, sal, people := dataset(300)
	res, err := Generalize(tree, sal, people, 25)
	if err != nil {
		t.Fatal(err)
	}
	deg := DegradationUtility(1, tree.Levels()) // city level
	an := AnonymizationUtility(res)
	ret := RetentionUtility(0.4)
	if deg.DonorQueries != 1 || an.DonorQueries != 0 {
		t.Fatalf("donor query availability: deg=%v anon=%v", deg.DonorQueries, an.DonorQueries)
	}
	if deg.Precision <= 0 {
		t.Fatal("degradation precision must be positive at city level")
	}
	if ret.DonorQueries != 0.4 {
		t.Fatal("retention utility wrong")
	}
}
