// Package anon implements the anonymization baseline for the usability
// comparison (E3): full-domain generalization k-anonymity in the style
// of Samarati/Sweeney, reusing the same generalization hierarchies as
// the degradation engine. The paper positions degradation against
// anonymization (§I): "data degradation applies to attributes describing
// a recorded event while keeping the identity of the donor intact" —
// anonymization must also generalize (or suppress) identity, destroying
// donor-oriented usability. This package makes that trade measurable.
package anon

import (
	"fmt"

	"instantdb/internal/gentree"
	"instantdb/internal/value"
	"instantdb/internal/workload"
)

// Result describes the chosen full-domain generalization.
type Result struct {
	// K is the anonymity parameter satisfied.
	K int
	// LocLevel and SalLevel are the uniform generalization levels chosen
	// for the two quasi-identifiers.
	LocLevel, SalLevel int
	// Classes is the number of equivalence classes, MinClass the
	// smallest class size (>= K on success).
	Classes, MinClass int
	// Precision is Sweeney's Prec metric: 1 - mean(level / (height-1))
	// over the quasi-identifier attributes; 1.0 = no generalization.
	Precision float64
	// Suppressed counts records removed because no generalization level
	// made their class large enough (only when even the coarsest levels
	// fail).
	Suppressed int
}

// Generalize finds the least-precision-loss full-domain generalization
// of (location, salary) satisfying k-anonymity over the given records.
// It scans (locLevel, salLevel) pairs in increasing total height and
// returns the first satisfying assignment; if none does, the records in
// undersized classes at the coarsest assignment are suppressed.
func Generalize(tree *gentree.Tree, sal *gentree.IntRange, people []workload.Person, k int) (Result, error) {
	if k <= 0 {
		return Result{}, fmt.Errorf("anon: k must be positive, got %d", k)
	}
	if len(people) == 0 {
		return Result{K: k, Precision: 1}, nil
	}
	locH := tree.Levels()
	salH := sal.Levels()
	type cand struct{ l, s int }
	var cands []cand
	for total := 0; total <= locH+salH-2; total++ {
		for l := 0; l < locH; l++ {
			s := total - l
			if s >= 0 && s < salH {
				cands = append(cands, cand{l, s})
			}
		}
	}
	var last Result
	for _, c := range cands {
		res, err := evaluate(tree, sal, people, k, c.l, c.s)
		if err != nil {
			return Result{}, err
		}
		last = res
		if res.MinClass >= k {
			return res, nil
		}
	}
	// Even the coarsest assignment failed: suppress undersized classes.
	last.Suppressed = countUndersized(tree, sal, people, k, last.LocLevel, last.SalLevel)
	return last, nil
}

func classKey(tree *gentree.Tree, sal *gentree.IntRange, p workload.Person, locLvl, salLvl int) (string, error) {
	stored, err := tree.ResolveInsert(value.Text(p.Address))
	if err != nil {
		return "", err
	}
	locG, err := tree.Degrade(stored, 0, locLvl)
	if err != nil {
		return "", err
	}
	salG, err := sal.Degrade(value.Int(p.Salary), 0, salLvl)
	if err != nil {
		return "", err
	}
	key := value.Encode(nil, locG)
	key = value.Encode(key, salG)
	return string(key), nil
}

func evaluate(tree *gentree.Tree, sal *gentree.IntRange, people []workload.Person, k, locLvl, salLvl int) (Result, error) {
	classes := make(map[string]int)
	for _, p := range people {
		key, err := classKey(tree, sal, p, locLvl, salLvl)
		if err != nil {
			return Result{}, err
		}
		classes[key]++
	}
	min := len(people)
	for _, n := range classes {
		if n < min {
			min = n
		}
	}
	prec := 1 - 0.5*(float64(locLvl)/float64(tree.Levels()-1)+float64(salLvl)/float64(sal.Levels()-1))
	return Result{K: k, LocLevel: locLvl, SalLevel: salLvl,
		Classes: len(classes), MinClass: min, Precision: prec}, nil
}

func countUndersized(tree *gentree.Tree, sal *gentree.IntRange, people []workload.Person, k, locLvl, salLvl int) int {
	classes := make(map[string]int)
	keys := make([]string, len(people))
	for i, p := range people {
		key, err := classKey(tree, sal, p, locLvl, salLvl)
		if err != nil {
			continue
		}
		keys[i] = key
		classes[key]++
	}
	n := 0
	for _, key := range keys {
		if key != "" && classes[key] < k {
			n++
		}
	}
	return n
}

// Utility compares the three protection mechanisms on donor-oriented
// service quality (the paper's usability claim). For a dataset of n
// records:
//
//   - Degradation at level j keeps every record linked to its donor at
//     precision prec(j): donor-history queries answer on all n records.
//   - Anonymization keeps precision Prec but severs donor identity:
//     donor-history queries answer on 0 records.
//   - Retention keeps full precision for records younger than θ and
//     nothing for the rest.
type Utility struct {
	Mechanism string
	// DonorQueries is the fraction of donor-history queries answerable.
	DonorQueries float64
	// Precision is the attribute precision of answerable data.
	Precision float64
}

// DegradationUtility returns the usability of a degradation level j over
// a domain of height h.
func DegradationUtility(j, h int) Utility {
	return Utility{
		Mechanism:    fmt.Sprintf("degradation@%d", j),
		DonorQueries: 1,
		Precision:    1 - float64(j)/float64(h-1),
	}
}

// AnonymizationUtility converts a Result into the shared utility form.
func AnonymizationUtility(r Result) Utility {
	return Utility{Mechanism: fmt.Sprintf("k-anon(k=%d)", r.K), DonorQueries: 0, Precision: r.Precision}
}

// RetentionUtility returns the usability of retention θ for data of the
// given age distribution: aliveFraction is the fraction of the dataset
// still younger than θ.
func RetentionUtility(aliveFraction float64) Utility {
	return Utility{Mechanism: "retention", DonorQueries: aliveFraction, Precision: aliveFraction}
}
