package workload

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"instantdb/internal/engine"
	"instantdb/internal/server"
	"instantdb/internal/value"
	"instantdb/internal/vclock"
	"instantdb/internal/wire"
)

const targetsSchema = `
CREATE TABLE kv (id INT PRIMARY KEY, v TEXT NOT NULL);
`

// startServerOn serves a fresh in-memory database on ln and returns a
// stop function.
func startServerOn(t *testing.T, ln net.Listener) (stop func()) {
	t.Helper()
	db, err := engine.Open(engine.Config{Clock: vclock.NewSimulated(vclock.Epoch)})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ExecScript(targetsSchema); err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Options{})
	done := make(chan struct{})
	go func() { srv.Serve(ln); close(done) }()
	var stopped bool
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		srv.Close()
		<-done
		db.Close()
	}
	t.Cleanup(stop)
	return stop
}

func startTargetServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln.Addr().String(), startServerOn(t, ln)
}

func TestTargetsSkipsFailedDialAtStart(t *testing.T) {
	addr, _ := startTargetServer(t)
	// A dead endpoint in the initial set is skipped-and-logged, not
	// fatal. 127.0.0.1:1 refuses immediately on loopback.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tg, err := DialTargets(ctx, []string{addr, "127.0.0.1:1"})
	if err != nil {
		t.Fatalf("DialTargets with one dead endpoint: %v", err)
	}
	defer tg.Close()
	for i := 0; i < 10; i++ {
		if _, err := tg.Exec(ctx, "INSERT INTO kv (id, v) VALUES (?, ?)",
			value.Int(int64(i)), value.Text("x")); err != nil {
			t.Fatalf("exec %d: %v", i, err)
		}
	}
	s := tg.Stats()
	if s.Endpoints != 2 || s.Live != 1 {
		t.Fatalf("stats = %+v, want 2 endpoints / 1 live", s)
	}
	if s.DownEvents == 0 {
		t.Fatal("initial dial failure must count as a down event")
	}
}

func TestTargetsAllDown(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := DialTargets(ctx, []string{"127.0.0.1:1"}); err == nil {
		t.Fatal("DialTargets with no reachable endpoint must fail")
	}
}

func TestTargetsSurvivesEndpointRestart(t *testing.T) {
	addrA, _ := startTargetServer(t)

	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := lnB.Addr().String()
	stopB := startServerOn(t, lnB)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	tg, err := DialTargets(ctx, []string{addrA, addrB})
	if err != nil {
		t.Fatal(err)
	}
	defer tg.Close()
	var logs []string
	tg.SetLogf(func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	})

	exec := func(id int64) error {
		_, err := tg.Exec(ctx, "INSERT INTO kv (id, v) VALUES (?, ?)",
			value.Int(id), value.Text("x"))
		return err
	}
	var id int64
	for i := 0; i < 8; i++ {
		id++
		if err := exec(id); err != nil {
			t.Fatalf("warm-up exec: %v", err)
		}
	}

	// Kill B. The next op routed to it poisons the session; after that
	// the round-robin must route around B without hanging, and the
	// outage must be visible as a down event.
	stopB()
	errs := 0
	for i := 0; i < 20; i++ {
		id++
		if err := exec(id); err != nil {
			if errors.Is(err, ErrAllEndpointsDown) {
				t.Fatal("one live endpoint left, yet pick reported all down")
			}
			errs++
		}
	}
	if errs == 0 {
		t.Fatal("expected at least one failed op when B died mid-run")
	}
	if s := tg.Stats(); s.Live != 1 || s.DownEvents == 0 {
		t.Fatalf("after kill stats = %+v, want 1 live and >0 down events", s)
	}

	// Restart B on the same address; continued traffic must reconnect
	// within the backoff schedule.
	lnB2, err := net.Listen("tcp", addrB)
	if err != nil {
		t.Fatalf("rebind %s: %v", addrB, err)
	}
	startServerOn(t, lnB2)
	deadline := time.Now().Add(15 * time.Second)
	for tg.Stats().Live < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("endpoint never reconnected; stats = %+v, logs = %q", tg.Stats(), logs)
		}
		id++
		exec(id) // errors tolerated while B is still in backoff
		time.Sleep(10 * time.Millisecond)
	}
	s := tg.Stats()
	if s.Reconnects == 0 {
		t.Fatalf("stats = %+v, want a recorded reconnect", s)
	}
}

func TestTargetsPreparedStmt(t *testing.T) {
	addrA, _ := startTargetServer(t)
	addrB, _ := startTargetServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tg, err := DialTargets(ctx, []string{addrA, addrB})
	if err != nil {
		t.Fatal(err)
	}
	defer tg.Close()

	ins := tg.Prepare("INSERT INTO kv (id, v) VALUES (?, ?)")
	for i := 0; i < 20; i++ {
		if _, err := ins.Exec(ctx, value.Int(int64(i)), value.Text("p")); err != nil {
			t.Fatalf("prepared exec %d: %v", i, err)
		}
	}
	// Both endpoints hold separate databases, so each saw half the
	// round-robin traffic.
	sel := tg.Prepare("SELECT v FROM kv WHERE id = ?")
	found := 0
	for i := 0; i < 20; i++ {
		for try := 0; try < 2; try++ { // row lives on one of the two endpoints
			rows, err := sel.Query(ctx, value.Int(int64(i)))
			if err != nil {
				t.Fatalf("prepared query: %v", err)
			}
			if rows.Len() > 0 {
				found++
				break
			}
		}
	}
	if found != 20 {
		t.Fatalf("found %d/20 rows via prepared round-robin queries", found)
	}
}

// TestTargetsStmtReprepareAfterRestart exercises the statement cache
// invalidation path: a prepared handle must survive its endpoint
// restarting (new session, new server-side statement table).
func TestTargetsStmtReprepareAfterRestart(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	stop := startServerOn(t, ln)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	tg, err := DialTargets(ctx, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer tg.Close()
	ins := tg.Prepare("INSERT INTO kv (id, v) VALUES (?, ?)")
	if _, err := ins.Exec(ctx, value.Int(1), value.Text("a")); err != nil {
		t.Fatal(err)
	}

	stop()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	startServerOn(t, ln2)

	deadline := time.Now().Add(15 * time.Second)
	var lastErr error
	for {
		if time.Now().After(deadline) {
			t.Fatalf("prepared exec never recovered after restart: %v", lastErr)
		}
		if _, lastErr = ins.Exec(ctx, value.Int(2), value.Text("b")); lastErr == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startNoPrepareServer mocks a router-like endpoint: handshake and
// parameterized exec work, Prepare is refused with the router's
// message.
func startNoPrepareServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				for {
					op, _, err := wire.ReadFrame(nc, wire.MaxFrameDefault)
					if err != nil {
						return
					}
					var rop byte
					var rp []byte
					switch op {
					case wire.OpHello:
						rop, rp = wire.OpWelcome, wire.EncodeWelcome()
					case wire.OpPrepare:
						rop, rp = wire.OpError, wire.EncodeError(wire.CodeSQL,
							"router: prepared statements are not supported through the shard router; use Exec with arguments")
					case wire.OpExec, wire.OpExecArgs, wire.OpQuery:
						rop, rp = wire.OpResult, wire.EncodeResult(&wire.Result{RowsAffected: 1})
					default:
						rop, rp = wire.OpError, wire.EncodeError(wire.CodeSQL, "mock: unsupported op")
					}
					if wire.WriteFrame(nc, rop, rp) != nil {
						return
					}
				}
			}(nc)
		}
	}()
	return ln.Addr().String()
}

// TestTargetsStmtFallsBackWithoutPrepare proves a Stmt keeps working
// against an endpoint that refuses Prepare (the shard router): the
// first use probes, the endpoint is marked, and every call lands as a
// parameterized one-shot exec instead of erroring.
func TestTargetsStmtFallsBackWithoutPrepare(t *testing.T) {
	addr := startNoPrepareServer(t)
	ctx := context.Background()
	tg, err := DialTargets(ctx, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer tg.Close()
	tg.SetLogf(t.Logf)

	st := tg.Prepare("INSERT INTO kv (id, v) VALUES (?, ?)")
	for i := 0; i < 5; i++ {
		res, err := st.Exec(ctx, value.Int(int64(i)), value.Text("x"))
		if err != nil {
			t.Fatalf("exec %d after prepare refusal: %v", i, err)
		}
		if res.RowsAffected != 1 {
			t.Fatalf("exec %d: rows affected = %d", i, res.RowsAffected)
		}
	}
	if _, err := st.Query(ctx); err != nil {
		t.Fatalf("query after prepare refusal: %v", err)
	}
	if got := tg.Stats(); got.Live != 1 || got.DownEvents != 0 {
		t.Fatalf("fallback cost availability: %+v", got)
	}
}
