// Package workload synthesizes the datasets and query mixes used by the
// experiment harness. The paper evaluates nothing quantitatively, so the
// workloads are built from its own motivating examples (§I): a
// cell-phone location stream over the Figure 1 location hierarchy and a
// person/salary table matching the STAT purpose example. Generators are
// deterministic (seeded) so every experiment is reproducible.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"instantdb/internal/gentree"
	"instantdb/internal/value"
)

// LocationUniverse is a synthetic location hierarchy with the Figure 1
// shape but scalable fan-out, for workloads larger than the figure's
// sample tree.
type LocationUniverse struct {
	Tree      *gentree.Tree
	Addresses []string // all leaf values
}

// NewLocationUniverse builds a location tree with the given fan-out per
// level: countries × regions × cities × addresses.
func NewLocationUniverse(countries, regions, cities, addresses int) *LocationUniverse {
	b := gentree.NewTreeBuilder("location", "address", "city", "region", "country")
	var leaves []string
	for c := 0; c < countries; c++ {
		country := fmt.Sprintf("country-%02d", c)
		for r := 0; r < regions; r++ {
			region := fmt.Sprintf("%s/region-%02d", country, r)
			for ci := 0; ci < cities; ci++ {
				city := fmt.Sprintf("%s/city-%02d", region, ci)
				for a := 0; a < addresses; a++ {
					addr := fmt.Sprintf("%s/addr-%03d", city, a)
					b.AddPath(addr, city, region, country)
					leaves = append(leaves, addr)
				}
			}
		}
	}
	return &LocationUniverse{Tree: b.MustBuild(), Addresses: leaves}
}

// Person is one synthetic donor record.
type Person struct {
	ID      int64
	Name    string
	Address string // leaf of the location universe
	Salary  int64
	SeenAt  time.Time
}

// PersonGen draws deterministic Person records. Location choice is
// Zipf-skewed (people cluster in popular places); salaries are
// log-normal-ish around 2500.
type PersonGen struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	uni  *LocationUniverse
	next int64
	base time.Time
	// Interarrival is the simulated time between records.
	Interarrival time.Duration
}

// NewPersonGen builds a generator over a location universe.
func NewPersonGen(seed int64, uni *LocationUniverse, base time.Time) *PersonGen {
	rng := rand.New(rand.NewSource(seed))
	return &PersonGen{
		rng:          rng,
		zipf:         rand.NewZipf(rng, 1.3, 4, uint64(len(uni.Addresses)-1)),
		uni:          uni,
		base:         base,
		Interarrival: time.Second,
	}
}

// Next draws the next record; records arrive Interarrival apart.
func (g *PersonGen) Next() Person {
	g.next++
	addr := g.uni.Addresses[g.zipf.Uint64()]
	salary := int64(800 + g.rng.ExpFloat64()*2000)
	if salary > 20000 {
		salary = 20000
	}
	return Person{
		ID:      g.next,
		Name:    fmt.Sprintf("person-%06d", g.next),
		Address: addr,
		Salary:  salary,
		SeenAt:  g.base.Add(time.Duration(g.next-1) * g.Interarrival),
	}
}

// Batch draws n records.
func (g *PersonGen) Batch(n int) []Person {
	out := make([]Person, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// QueryKind classifies generated queries.
type QueryKind uint8

// Query kinds of the OLTP/OLAP mixes.
const (
	// QPoint is an OLTP point lookup on a location value at the
	// purpose's accuracy.
	QPoint QueryKind = iota
	// QRange is an OLTP salary-bucket lookup.
	QRange
	// QAggregate is an OLAP count-by-location sweep.
	QAggregate
)

// Query is one generated query.
type Query struct {
	Kind QueryKind
	SQL  string
}

// QueryGen draws queries against the person table at a fixed accuracy
// level per degradable column.
type QueryGen struct {
	rng *rand.Rand
	uni *LocationUniverse
	// LocLevel and purpose name used in generated SQL.
	Purpose string
	// LocLevel selects which tree level point queries target.
	LocLevel int
}

// NewQueryGen builds a query generator.
func NewQueryGen(seed int64, uni *LocationUniverse, purpose string, locLevel int) *QueryGen {
	return &QueryGen{rng: rand.New(rand.NewSource(seed)), uni: uni, Purpose: purpose, LocLevel: locLevel}
}

// valueAt picks a random tree value at the generator's level.
func (g *QueryGen) valueAt() string {
	nodes := g.uni.Tree.NodesAtLevel(g.LocLevel)
	return g.uni.Tree.NodeValue(nodes[g.rng.Intn(len(nodes))])
}

// Point draws an OLTP point query.
func (g *QueryGen) Point() Query {
	return Query{Kind: QPoint, SQL: fmt.Sprintf(
		"SELECT id, name FROM person WHERE location = '%s' FOR PURPOSE %s", g.valueAt(), g.Purpose)}
}

// Range draws a salary-bucket query (the paper's RANGE1000 example).
func (g *QueryGen) Range() Query {
	lo := int64(g.rng.Intn(10)) * 1000
	return Query{Kind: QRange, SQL: fmt.Sprintf(
		"SELECT id, name FROM person WHERE salary = '%d-%d' FOR PURPOSE %s", lo, lo+1000, g.Purpose)}
}

// Aggregate draws an OLAP sweep.
func (g *QueryGen) Aggregate() Query {
	return Query{Kind: QAggregate, SQL: fmt.Sprintf(
		"SELECT location, COUNT(*) AS n FROM person GROUP BY location FOR PURPOSE %s", g.Purpose)}
}

// Mix draws a query by OLTP/OLAP weights (point, range, aggregate).
func (g *QueryGen) Mix(point, rng, agg int) Query {
	total := point + rng + agg
	r := g.rng.Intn(total)
	switch {
	case r < point:
		return g.Point()
	case r < point+rng:
		return g.Range()
	default:
		return g.Aggregate()
	}
}

// ParamQuery is a generated query in prepared-statement form: SQL is
// constant per generator and kind (prepare it once per session), Args
// carries the drawn values. The load harness uses this form so that
// parse/bind cost doesn't pollute server-side latency attribution; the
// text form above remains for the -text comparison path.
type ParamQuery struct {
	Kind QueryKind
	SQL  string
	Args []value.Value
}

// PointSQL is the constant parameterized form of Point.
func (g *QueryGen) PointSQL() string {
	return "SELECT id, name FROM person WHERE location = ? FOR PURPOSE " + g.Purpose
}

// PointArgs draws an OLTP point query in prepared form.
func (g *QueryGen) PointArgs() ParamQuery {
	return ParamQuery{Kind: QPoint, SQL: g.PointSQL(),
		Args: []value.Value{value.Text(g.valueAt())}}
}

// RangeSQL is the constant parameterized form of Range.
func (g *QueryGen) RangeSQL() string {
	return "SELECT id, name FROM person WHERE salary = ? FOR PURPOSE " + g.Purpose
}

// RangeArgs draws a salary-bucket query in prepared form.
func (g *QueryGen) RangeArgs() ParamQuery {
	lo := int64(g.rng.Intn(10)) * 1000
	return ParamQuery{Kind: QRange, SQL: g.RangeSQL(),
		Args: []value.Value{value.Text(fmt.Sprintf("%d-%d", lo, lo+1000))}}
}

// AggregateSQL is the constant form of Aggregate (no parameters — the
// sweep shape is fixed; it still benefits from a prepared plan).
func (g *QueryGen) AggregateSQL() string {
	return "SELECT location, COUNT(*) AS n FROM person GROUP BY location FOR PURPOSE " + g.Purpose
}

// AggregateArgs draws an OLAP sweep in prepared form.
func (g *QueryGen) AggregateArgs() ParamQuery {
	return ParamQuery{Kind: QAggregate, SQL: g.AggregateSQL()}
}

// MixArgs draws a prepared-form query by OLTP/OLAP weights.
func (g *QueryGen) MixArgs(point, rng, agg int) ParamQuery {
	total := point + rng + agg
	r := g.rng.Intn(total)
	switch {
	case r < point:
		return g.PointArgs()
	case r < point+rng:
		return g.RangeArgs()
	default:
		return g.AggregateArgs()
	}
}
