package workload

import (
	"strings"
	"testing"
	"time"

	"instantdb/internal/value"
	"instantdb/internal/vclock"
)

func TestLocationUniverseShape(t *testing.T) {
	uni := NewLocationUniverse(2, 3, 4, 5)
	if got := len(uni.Addresses); got != 2*3*4*5 {
		t.Fatalf("addresses=%d", got)
	}
	if uni.Tree.Levels() != 4 {
		t.Fatal("levels")
	}
	if got := len(uni.Tree.NodesAtLevel(3)); got != 2 {
		t.Fatalf("countries=%d", got)
	}
	if got := len(uni.Tree.NodesAtLevel(1)); got != 2*3*4 {
		t.Fatalf("cities=%d", got)
	}
	// Every address resolves.
	for _, a := range uni.Addresses[:10] {
		if _, err := uni.Tree.ResolveInsert(value.Text(a)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPersonGenDeterministic(t *testing.T) {
	uni := NewLocationUniverse(2, 2, 2, 3)
	a := NewPersonGen(42, uni, vclock.Epoch).Batch(50)
	b := NewPersonGen(42, uni, vclock.Epoch).Batch(50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generator not deterministic at %d", i)
		}
	}
	c := NewPersonGen(43, uni, vclock.Epoch).Batch(50)
	same := 0
	for i := range a {
		if a[i].Address == c[i].Address {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestPersonGenFields(t *testing.T) {
	uni := NewLocationUniverse(2, 2, 2, 3)
	g := NewPersonGen(1, uni, vclock.Epoch)
	g.Interarrival = time.Minute
	people := g.Batch(10)
	for i, p := range people {
		if p.ID != int64(i+1) {
			t.Fatalf("id=%d", p.ID)
		}
		if p.Salary < 800 || p.Salary > 20000 {
			t.Fatalf("salary=%d", p.Salary)
		}
		want := vclock.Epoch.Add(time.Duration(i) * time.Minute)
		if !p.SeenAt.Equal(want) {
			t.Fatalf("seenAt=%v want %v", p.SeenAt, want)
		}
	}
}

func TestQueryGen(t *testing.T) {
	uni := NewLocationUniverse(2, 2, 2, 3)
	g := NewQueryGen(5, uni, "stat", 3)
	p := g.Point()
	if p.Kind != QPoint || !strings.Contains(p.SQL, "FOR PURPOSE stat") ||
		!strings.Contains(p.SQL, "country-0") {
		t.Fatalf("point=%+v", p)
	}
	r := g.Range()
	if r.Kind != QRange || !strings.Contains(r.SQL, "salary = '") {
		t.Fatalf("range=%+v", r)
	}
	a := g.Aggregate()
	if a.Kind != QAggregate || !strings.Contains(a.SQL, "GROUP BY location") {
		t.Fatalf("agg=%+v", a)
	}
	counts := map[QueryKind]int{}
	for i := 0; i < 300; i++ {
		counts[g.Mix(8, 1, 1).Kind]++
	}
	if counts[QPoint] < 150 || counts[QAggregate] == 0 || counts[QRange] == 0 {
		t.Fatalf("mix=%v", counts)
	}
}
