package workload

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"instantdb/client"
	"instantdb/internal/value"
)

// Reconnect backoff bounds for a down endpoint: first retry after
// retryBase, doubling to retryMax.
const (
	retryBase = 100 * time.Millisecond
	retryMax  = 5 * time.Second
)

// ErrAllEndpointsDown is returned by Exec/Query when every endpoint is
// down and none is due for a reconnect attempt. Load drivers treat it
// as an availability event, not a reason to hang.
var ErrAllEndpointsDown = errors.New("workload: all target endpoints down")

// Targets drives a workload against one or more wire endpoints,
// spreading operations round-robin over one session per endpoint (list
// an address twice for two sessions to it). The endpoints must be
// equivalent views of the same deployment — several router front ends
// over one sharded cluster, or a single server — so that any operation
// is correct on any of them. Pointing Targets at raw shards directly
// would misroute keyed writes; routing is the router's job, this type
// only balances sessions.
//
// An endpoint whose dial or connection fails is skipped and logged, not
// fatal: the round-robin routes around it while reconnect attempts back
// off from retryBase to retryMax, and Stats counts the outage as an
// availability event. A load run therefore survives a shard restart
// and reports it, rather than stalling on a dead socket.
type Targets struct {
	opts []client.Option

	mu         sync.Mutex
	logf       func(format string, args ...any)
	eps        []*tEndpoint
	next       int
	downEvents uint64 // transitions live → down
	reconnects uint64 // successful re-dials
	skips      uint64 // picks that routed around a down endpoint
}

// tEndpoint is one address slot: its live session (nil while down),
// the prepared-statement cache for that session, and reconnect state.
// noPrepare is set when the endpoint refuses Prepare outright (the
// shard router does); Stmt falls back to parameterized Exec/Query
// there, so one Targets set can mix servers and routers.
type tEndpoint struct {
	addr      string
	conn      *client.Conn
	stmts     map[string]*client.Stmt
	noPrepare bool
	dialing   bool
	backoff   time.Duration
	nextRetry time.Time
}

// TargetsStats is a snapshot of endpoint availability over the run.
type TargetsStats struct {
	Endpoints    int    `json:"endpoints"`
	Live         int    `json:"live"`
	DownEvents   uint64 `json:"down_events"`
	Reconnects   uint64 `json:"reconnects"`
	SkippedPicks uint64 `json:"skipped_picks"`
}

// DialTargets opens one session per address, all with the same options.
// A failed dial is logged and left for reconnect backoff instead of
// failing the whole set; an error is returned only when no endpoint
// could be reached at all.
func DialTargets(ctx context.Context, addrs []string, opts ...client.Option) (*Targets, error) {
	if len(addrs) == 0 {
		return nil, errors.New("workload: no target endpoints")
	}
	t := &Targets{opts: opts, logf: func(string, ...any) {}}
	var firstErr error
	live := 0
	for _, addr := range addrs {
		ep := &tEndpoint{addr: addr}
		c, err := client.Dial(ctx, addr, opts...)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			t.downEvents++
			ep.backoff = retryBase
			ep.nextRetry = time.Now().Add(retryBase)
		} else {
			ep.conn = c
			ep.stmts = make(map[string]*client.Stmt)
			live++
		}
		t.eps = append(t.eps, ep)
	}
	if live == 0 {
		t.Close()
		return nil, fmt.Errorf("workload: no target endpoint reachable: %w", firstErr)
	}
	if firstErr != nil {
		t.logf("workload: %d/%d endpoints unreachable at start (first: %v); will retry with backoff",
			len(addrs)-live, len(addrs), firstErr)
	}
	return t, nil
}

// SetLogf routes skip/reconnect notices (default: dropped).
func (t *Targets) SetLogf(f func(format string, args ...any)) {
	t.mu.Lock()
	if f == nil {
		f = func(string, ...any) {}
	}
	t.logf = f
	t.mu.Unlock()
}

// Len is the number of endpoints (live or not).
func (t *Targets) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.eps)
}

// Stats snapshots availability counters.
func (t *Targets) Stats() TargetsStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TargetsStats{
		Endpoints:    len(t.eps),
		DownEvents:   t.downEvents,
		Reconnects:   t.reconnects,
		SkippedPicks: t.skips,
	}
	for _, ep := range t.eps {
		if ep.conn != nil && !ep.conn.Closed() {
			s.Live++
		}
	}
	return s
}

// pick returns the next live endpoint round-robin, skipping (and
// counting) down endpoints and attempting at most one due reconnect
// along the way. It never blocks on a dead socket: with every endpoint
// down and none due for retry it returns ErrAllEndpointsDown.
func (t *Targets) pick(ctx context.Context) (*tEndpoint, *client.Conn, error) {
	t.mu.Lock()
	n := len(t.eps)
	if n == 0 {
		t.mu.Unlock()
		return nil, nil, ErrAllEndpointsDown
	}
	for i := 0; i < n; i++ {
		ep := t.eps[t.next%n]
		t.next++
		if c := ep.conn; c != nil {
			if !c.Closed() {
				t.mu.Unlock()
				return ep, c, nil
			}
			// Poisoned by a transport error some caller saw first.
			t.markDownLocked(ep, c, errors.New("session poisoned"))
		}
		if ep.dialing || time.Now().Before(ep.nextRetry) {
			t.skips++
			continue
		}
		ep.dialing = true
		t.mu.Unlock()
		c, err := client.Dial(ctx, ep.addr, t.opts...)
		t.mu.Lock()
		ep.dialing = false
		if err != nil {
			if ep.backoff < retryBase {
				ep.backoff = retryBase
			} else if ep.backoff < retryMax {
				ep.backoff *= 2
				if ep.backoff > retryMax {
					ep.backoff = retryMax
				}
			}
			ep.nextRetry = time.Now().Add(ep.backoff)
			t.skips++
			t.logf("workload: endpoint %s still down (%v); next retry in %v", ep.addr, err, ep.backoff)
			continue
		}
		ep.conn = c
		ep.stmts = make(map[string]*client.Stmt)
		ep.backoff = 0
		t.reconnects++
		t.logf("workload: endpoint %s reconnected", ep.addr)
		t.mu.Unlock()
		return ep, c, nil
	}
	t.mu.Unlock()
	return nil, nil, ErrAllEndpointsDown
}

// markDownLocked records a live→down transition for ep if c is still
// its current session. Caller holds t.mu.
func (t *Targets) markDownLocked(ep *tEndpoint, c *client.Conn, err error) {
	if ep.conn != c {
		return // already replaced by a reconnect
	}
	ep.conn = nil
	ep.stmts = nil
	ep.backoff = retryBase
	ep.nextRetry = time.Now().Add(retryBase)
	t.downEvents++
	t.logf("workload: endpoint %s down: %v", ep.addr, err)
}

// noteErr checks whether an operation error poisoned the session and,
// if so, schedules the endpoint for reconnect.
func (t *Targets) noteErr(ep *tEndpoint, c *client.Conn, err error) {
	if err == nil || !c.Closed() {
		return // SQL-level error; session still healthy
	}
	t.mu.Lock()
	t.markDownLocked(ep, c, err)
	t.mu.Unlock()
}

// Exec runs one statement on the next live endpoint round-robin.
func (t *Targets) Exec(ctx context.Context, sql string, args ...value.Value) (*client.Result, error) {
	ep, c, err := t.pick(ctx)
	if err != nil {
		return nil, err
	}
	res, err := c.Exec(ctx, sql, args...)
	t.noteErr(ep, c, err)
	return res, err
}

// Query runs one query on the next live endpoint round-robin.
func (t *Targets) Query(ctx context.Context, sql string, args ...value.Value) (*client.Rows, error) {
	ep, c, err := t.pick(ctx)
	if err != nil {
		return nil, err
	}
	rows, err := c.Query(ctx, sql, args...)
	t.noteErr(ep, c, err)
	return rows, err
}

// Stmt is a prepared statement spread over the target set: the SQL is
// prepared lazily once per endpoint session and re-prepared after a
// reconnect or a server-side eviction (ErrUnknownStmt), so callers get
// single-round-trip execution without tracking per-session handles.
// On an endpoint that refuses Prepare (the shard router), Exec/Query
// transparently fall back to parameterized one-shot execution.
type Stmt struct {
	t   *Targets
	sql string
}

// Prepare returns a statement handle for sql over the target set. No
// wire traffic happens until the first Exec/Query.
func (t *Targets) Prepare(sql string) *Stmt { return &Stmt{t: t, sql: sql} }

// stmtOn returns the per-endpoint prepared handle, preparing it on
// first use for this session. A nil, nil return means the endpoint
// does not support Prepare (a shard router): the caller must fall back
// to parameterized Exec/Query.
func (s *Stmt) stmtOn(ctx context.Context, ep *tEndpoint, c *client.Conn) (*client.Stmt, error) {
	s.t.mu.Lock()
	if ep.noPrepare {
		s.t.mu.Unlock()
		return nil, nil
	}
	if ep.conn == c && ep.stmts != nil {
		if cs, ok := ep.stmts[s.sql]; ok {
			s.t.mu.Unlock()
			return cs, nil
		}
	}
	s.t.mu.Unlock()
	cs, err := c.Prepare(ctx, s.sql)
	if err != nil {
		if !c.Closed() && strings.Contains(err.Error(), "prepared statements are not supported") {
			s.t.mu.Lock()
			ep.noPrepare = true
			s.t.logf("workload: endpoint %s refuses Prepare; falling back to parameterized Exec", ep.addr)
			s.t.mu.Unlock()
			return nil, nil
		}
		s.t.noteErr(ep, c, err)
		return nil, err
	}
	s.t.mu.Lock()
	if ep.conn == c && ep.stmts != nil {
		ep.stmts[s.sql] = cs
	}
	s.t.mu.Unlock()
	return cs, nil
}

// forget drops a cached handle after a server-side eviction.
func (s *Stmt) forget(ep *tEndpoint, c *client.Conn) {
	s.t.mu.Lock()
	if ep.conn == c && ep.stmts != nil {
		delete(ep.stmts, s.sql)
	}
	s.t.mu.Unlock()
}

// Exec runs the prepared statement on the next live endpoint,
// re-preparing once if the server evicted the handle.
func (s *Stmt) Exec(ctx context.Context, args ...value.Value) (*client.Result, error) {
	ep, c, err := s.t.pick(ctx)
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		cs, err := s.stmtOn(ctx, ep, c)
		if err != nil {
			return nil, err
		}
		if cs == nil { // endpoint refuses Prepare: parameterized one-shot
			res, err := c.Exec(ctx, s.sql, args...)
			s.t.noteErr(ep, c, err)
			return res, err
		}
		res, err := cs.Exec(ctx, args...)
		if errors.Is(err, client.ErrUnknownStmt) && attempt == 0 {
			s.forget(ep, c)
			continue
		}
		s.t.noteErr(ep, c, err)
		return res, err
	}
}

// Query runs the prepared query on the next live endpoint,
// re-preparing once if the server evicted the handle.
func (s *Stmt) Query(ctx context.Context, args ...value.Value) (*client.Rows, error) {
	ep, c, err := s.t.pick(ctx)
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		cs, err := s.stmtOn(ctx, ep, c)
		if err != nil {
			return nil, err
		}
		if cs == nil { // endpoint refuses Prepare: parameterized one-shot
			rows, err := c.Query(ctx, s.sql, args...)
			s.t.noteErr(ep, c, err)
			return rows, err
		}
		rows, err := cs.Query(ctx, args...)
		if errors.Is(err, client.ErrUnknownStmt) && attempt == 0 {
			s.forget(ep, c)
			continue
		}
		s.t.noteErr(ep, c, err)
		return rows, err
	}
}

// Close closes every live session, keeping the first error.
func (t *Targets) Close() error {
	t.mu.Lock()
	eps := t.eps
	t.eps = nil
	t.mu.Unlock()
	var first error
	for _, ep := range eps {
		if ep.conn == nil {
			continue
		}
		if err := ep.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
