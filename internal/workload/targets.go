package workload

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"instantdb/client"
	"instantdb/internal/value"
)

// Targets drives a workload against one or more wire endpoints,
// spreading operations round-robin over one session per endpoint. The
// endpoints must be equivalent views of the same deployment — several
// router front ends over one sharded cluster, or a single server — so
// that any operation is correct on any of them. Pointing Targets at raw
// shards directly would misroute keyed writes; routing is the router's
// job, this type only balances sessions.
type Targets struct {
	mu    sync.Mutex
	conns []*client.Conn
	next  int
}

// DialTargets opens one session per address, all with the same options.
func DialTargets(ctx context.Context, addrs []string, opts ...client.Option) (*Targets, error) {
	if len(addrs) == 0 {
		return nil, errors.New("workload: no target endpoints")
	}
	t := &Targets{}
	for _, addr := range addrs {
		c, err := client.Dial(ctx, addr, opts...)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("workload: dial target %s: %w", addr, err)
		}
		t.conns = append(t.conns, c)
	}
	return t, nil
}

// Len is the number of endpoints.
func (t *Targets) Len() int { return len(t.conns) }

// pick returns the next session round-robin.
func (t *Targets) pick() *client.Conn {
	t.mu.Lock()
	c := t.conns[t.next%len(t.conns)]
	t.next++
	t.mu.Unlock()
	return c
}

// Exec runs one statement on the next endpoint round-robin.
func (t *Targets) Exec(ctx context.Context, sql string, args ...value.Value) (*client.Result, error) {
	return t.pick().Exec(ctx, sql, args...)
}

// Query runs one query on the next endpoint round-robin.
func (t *Targets) Query(ctx context.Context, sql string, args ...value.Value) (*client.Rows, error) {
	return t.pick().Query(ctx, sql, args...)
}

// Close closes every session, keeping the first error.
func (t *Targets) Close() error {
	var first error
	for _, c := range t.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.conns = nil
	return first
}
