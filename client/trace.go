package client

import (
	"context"
	"fmt"

	"instantdb/internal/trace"
	"instantdb/internal/value"
	"instantdb/internal/wire"
)

// Trace-dump modes, re-exported for TraceDump callers.
const (
	// TraceByID fetches the one trace with the given id.
	TraceByID = wire.TraceByID
	// TraceRecent fetches the server's recent-trace ring, newest first.
	TraceRecent = wire.TraceRecent
	// TraceSlow fetches the server's slow-trace ring, newest first.
	TraceSlow = wire.TraceSlow
)

// ExecTraced runs one statement under a forced server-side trace —
// recorded regardless of the server's sampling rate — and returns the
// trace id alongside the result. The id is allocated client-side, so
// it is valid even when the statement itself fails; pass it to
// TraceDump to fetch the span tree once the server has finished it.
func (c *Conn) ExecTraced(ctx context.Context, sql string, args ...value.Value) (*Result, uint64, error) {
	id := trace.NewID()
	res, err := c.ExecTracedAs(ctx, id, 0, sql, args...)
	return res, id, err
}

// ExecTracedAs is ExecTraced with an explicit trace identity: the
// statement's server-side root span joins traceID under parentSpanID.
// The shard router uses it to hang every shard's spans under its own
// scatter span, so a cross-shard statement stitches into one tree.
func (c *Conn) ExecTracedAs(ctx context.Context, traceID, parentSpanID uint64, sql string, args ...value.Value) (*Result, error) {
	inner := wire.Traced{TraceID: traceID, ParentSpanID: parentSpanID}
	if len(args) == 0 {
		inner.Op, inner.Payload = wire.OpExec, []byte(sql)
	} else {
		inner.Op, inner.Payload = wire.OpExecArgs, wire.EncodeExecArgs(sql, args)
	}
	return c.request(ctx, wire.OpTraced, wire.EncodeTraced(inner))
}

// TraceDump fetches finished traces from the server's in-memory rings:
// mode TraceByID with a trace id (zero or one results), or TraceRecent
// / TraceSlow with id 0 (newest first). Traces are bounded rings —
// a trace displaced by later traffic is gone.
func (c *Conn) TraceDump(ctx context.Context, mode byte, id uint64) ([]*trace.Rec, error) {
	op, payload, err := c.roundTripLocked(ctx, wire.OpTraceDump, wire.EncodeTraceDump(mode, id))
	if err != nil {
		return nil, err
	}
	if op != wire.OpTraceData {
		return nil, fmt.Errorf("client: unexpected trace-dump reply opcode %#x", op)
	}
	return wire.DecodeTraceRecs(payload)
}

// AuditTail fetches the newest n degradation audit events from the
// server's in-memory tail (n <= 0 fetches everything retained),
// oldest first. Each event carries its hash-chain value — the same
// bytes the on-disk trail stores — so a caller holding a verified
// trail can cross-check what the server reports.
func (c *Conn) AuditTail(ctx context.Context, n int) ([]trace.Event, error) {
	if n < 0 {
		n = 0
	}
	op, payload, err := c.roundTripLocked(ctx, wire.OpAuditTail, wire.EncodeAuditTail(uint64(n)))
	if err != nil {
		return nil, err
	}
	if op != wire.OpAuditData {
		return nil, fmt.Errorf("client: unexpected audit-tail reply opcode %#x", op)
	}
	return wire.DecodeAuditEvents(payload)
}
