// Package client is the pure-Go client for an InstantDB network server
// (internal/server, started by cmd/instantdb-server). A Conn is one
// remote session: it carries a purpose, at most one open transaction,
// and observes the same purpose-limited accuracy views as an embedded
// engine.Conn with that purpose. Values in query results are
// instantdb.Value scalars decoded with the engine's own codec.
//
//	conn, err := client.Dial(ctx, "localhost:7654", client.WithPurpose("stats"))
//	...
//	rows, err := conn.Query(ctx, "SELECT place FROM visits")
//
// A Conn serializes its requests internally, so it may be shared between
// goroutines, but statements then interleave on one session — open one
// Conn per logical session (in particular per transaction).
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"instantdb/internal/value"
	"instantdb/internal/wire"
)

// Error is a server-reported failure. Code is one of the wire.Code*
// constants; fatal codes end the session.
type Error = wire.Error

// ErrClosed marks use of a closed client connection.
var ErrClosed = errors.New("client: connection closed")

// Sentinel errors for server-reported failure conditions. Every
// server-reported error carries a wire code, and errors.Is matches it
// against the corresponding sentinel, so callers branch on conditions
// instead of string-matching messages:
//
//	if errors.Is(err, client.ErrServerBusy) { backoff() }
var (
	// ErrUnknownPurpose: the handshake or SET PURPOSE named a purpose
	// the server has not declared.
	ErrUnknownPurpose = wire.ErrUnknownPurpose
	// ErrServerBusy: the server's connection limit is reached (fatal).
	ErrServerBusy = wire.ErrServerBusy
	// ErrShuttingDown: the server is draining connections (fatal).
	ErrShuttingDown = wire.ErrShuttingDown
	// ErrProtocol: a framing violation ended the session (fatal).
	ErrProtocol = wire.ErrProtocol
	// ErrFrameTooLarge: a frame exceeded the size limit — reported by
	// the server (fatal) or hit locally while reading a response.
	ErrFrameTooLarge = wire.ErrFrameTooLarge
	// ErrUnknownStmt: the executed statement id was closed or evicted
	// from the server's per-session registry; re-prepare and retry.
	ErrUnknownStmt = wire.ErrUnknownStmt
	// ErrReadOnlyReplica: the statement would write, but the server is
	// a read replica (started with -replica-of). Non-fatal — the
	// session stays usable for reads; send writes to the leader.
	ErrReadOnlyReplica = wire.ErrReadOnlyReplica
	// ErrReplUnavailable: a replication handshake was refused — the
	// server cannot act as a leader (ephemeral or vacuum-mode database)
	// or the requested log position was checkpointed away, so the
	// replica must be reseeded. Fatal.
	ErrReplUnavailable = wire.ErrReplUnavailable
	// ErrShardStale: a ShardCheck presented a routing-table version
	// older than the one the shard has already served under — reload the
	// routing table before routing anything to this shard. Fatal.
	ErrShardStale = wire.ErrShardStale
)

// Rows is a materialized query result.
type Rows struct {
	Columns []string
	Data    [][]value.Value
}

// Len returns the row count.
func (r *Rows) Len() int { return len(r.Data) }

// Result reports one statement's outcome.
type Result struct {
	// Rows is non-nil for SELECT.
	Rows *Rows
	// RowsAffected counts inserted/updated/deleted tuples.
	RowsAffected int
	// LastInsertID is the tuple id of the last inserted tuple.
	LastInsertID uint64
}

// Option tunes Dial.
type Option func(*config)

type config struct {
	purpose  string
	coarse   bool
	maxFrame int
}

// WithPurpose sets the session purpose during the handshake; Dial fails
// with a CodeUnknownPurpose error if the server has no such purpose.
func WithPurpose(name string) Option { return func(c *config) { c.purpose = name } }

// WithCoarse enables the paper's §IV best-effort semantics: tuples
// degraded past the demanded accuracy still qualify, rendered at their
// coarser actual level.
func WithCoarse() Option { return func(c *config) { c.coarse = true } }

// WithMaxFrame overrides the maximum response payload size accepted
// from the server (default wire.MaxFrameDefault).
func WithMaxFrame(n int) Option { return func(c *config) { c.maxFrame = n } }

// Conn is a client session on a remote InstantDB server.
type Conn struct {
	mu     sync.Mutex
	nc     net.Conn
	br     *bufio.Reader
	cfg    config
	closed bool

	// deadlineMu orders socket deadline writes between round trips and
	// stale cancellation watchers; deadlineGen invalidates watchers of
	// finished round trips.
	deadlineMu  sync.Mutex
	deadlineGen uint64
}

// Dial connects, performs the protocol handshake and returns the
// session. The context bounds the dial and the handshake.
func Dial(ctx context.Context, addr string, opts ...Option) (*Conn, error) {
	cfg := config{maxFrame: wire.MaxFrameDefault}
	for _, o := range opts {
		o(&cfg)
	}
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{nc: nc, br: bufio.NewReader(nc), cfg: cfg}
	hello := wire.EncodeHello(wire.Hello{Version: wire.Version, Purpose: cfg.purpose, Coarse: cfg.coarse})
	op, payload, err := c.roundTrip(ctx, wire.OpHello, hello)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if op != wire.OpWelcome {
		nc.Close()
		return nil, fmt.Errorf("client: unexpected handshake reply opcode %#x", op)
	}
	if _, err := wire.DecodeWelcome(payload); err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// Closed reports whether the session is unusable — explicitly closed,
// or poisoned by a fatal transport or protocol failure.
func (c *Conn) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Close ends the session. The server rolls back any open transaction.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.nc.Close()
}

// Exec runs one SQL statement and returns its result. Args bind to `?`
// placeholders server-side in a single round trip (parse, bind,
// execute); values never pass through SQL text, so string arguments
// need no quoting and cannot inject. For statements executed
// repeatedly, Prepare amortizes the parse as well.
func (c *Conn) Exec(ctx context.Context, sql string, args ...value.Value) (*Result, error) {
	if len(args) == 0 {
		return c.request(ctx, wire.OpExec, []byte(sql))
	}
	return c.request(ctx, wire.OpExecArgs, wire.EncodeExecArgs(sql, args))
}

// Query runs one SQL statement and returns its rows (empty, never nil,
// for statements that produce none). Args bind to `?` placeholders as
// in Exec.
func (c *Conn) Query(ctx context.Context, sql string, args ...value.Value) (*Rows, error) {
	var res *Result
	var err error
	if len(args) == 0 {
		res, err = c.request(ctx, wire.OpQuery, []byte(sql))
	} else {
		res, err = c.request(ctx, wire.OpExecArgs, wire.EncodeExecArgs(sql, args))
	}
	if err != nil {
		return nil, err
	}
	if res.Rows == nil {
		return &Rows{}, nil
	}
	return res.Rows, nil
}

// Prepare parses sql into a server-side prepared statement and returns
// its handle. The statement is parsed once on the server; each Exec
// binds arguments to its `?` placeholders without re-sending or
// re-parsing the SQL. Statements are per-session: the server caps how
// many stay registered (least-recently-used eviction), and executing an
// evicted handle fails with ErrUnknownStmt — re-prepare and retry.
func (c *Conn) Prepare(ctx context.Context, sql string) (*Stmt, error) {
	rop, rp, err := c.roundTripLocked(ctx, wire.OpPrepare, []byte(sql))
	if err != nil {
		return nil, err
	}
	if rop != wire.OpStmtReady {
		return nil, fmt.Errorf("client: unexpected prepare reply opcode %#x", rop)
	}
	ready, err := wire.DecodeStmtReady(rp)
	if err != nil {
		return nil, err
	}
	return &Stmt{c: c, id: ready.ID, numParams: ready.NumParams}, nil
}

// Stmt is a handle on a server-side prepared statement, bound to the
// Conn that prepared it. Like the Conn, it serializes its requests
// internally.
type Stmt struct {
	c         *Conn
	id        uint64
	numParams int
}

// NumParams returns the number of `?` placeholders in the statement.
func (s *Stmt) NumParams() int { return s.numParams }

// Exec executes the prepared statement with args bound to its
// placeholders. The arity must match NumParams exactly.
func (s *Stmt) Exec(ctx context.Context, args ...value.Value) (*Result, error) {
	return s.c.request(ctx, wire.OpExecPrepared, wire.EncodeExecPrepared(s.id, args))
}

// Query is Exec for reads: it returns the result rows (empty, never
// nil, for statements that produce none).
func (s *Stmt) Query(ctx context.Context, args ...value.Value) (*Rows, error) {
	res, err := s.Exec(ctx, args...)
	if err != nil {
		return nil, err
	}
	if res.Rows == nil {
		return &Rows{}, nil
	}
	return res.Rows, nil
}

// Close discards the server-side statement. Closing an already-evicted
// or re-closed statement is a no-op; closing over a dead connection
// returns the transport error.
func (s *Stmt) Close(ctx context.Context) error {
	_, err := s.c.request(ctx, wire.OpCloseStmt, wire.EncodeCloseStmt(s.id))
	return err
}

// SetPurpose switches the session purpose by name.
func (c *Conn) SetPurpose(ctx context.Context, name string) error {
	_, err := c.request(ctx, wire.OpSetPurpose, []byte(name))
	return err
}

// Begin opens an explicit read-write transaction on the session.
func (c *Conn) Begin(ctx context.Context) error {
	_, err := c.request(ctx, wire.OpBegin, nil)
	return err
}

// BeginReadOnly opens a read-only transaction on the session: every
// statement until Commit/Rollback reads one consistent snapshot, takes
// no locks server-side (in particular, it never delays the degradation
// engine), and write statements fail with the transaction aborted.
// Note the one intentional deviation from classic snapshot isolation:
// LCP transitions crossing their deadline mid-transaction ARE visible —
// expired accuracy states are never readable, whatever snapshot is open.
func (c *Conn) BeginReadOnly(ctx context.Context) error {
	_, err := c.request(ctx, wire.OpBeginRO, nil)
	return err
}

// Commit commits the open transaction.
func (c *Conn) Commit(ctx context.Context) error {
	_, err := c.request(ctx, wire.OpCommit, nil)
	return err
}

// Rollback aborts the open transaction. It is idempotent: rolling back
// when no transaction is open — in particular after a statement failure
// already aborted it server-side — succeeds.
func (c *Conn) Rollback(ctx context.Context) error {
	_, err := c.request(ctx, wire.OpRollback, nil)
	return err
}

// BackupInfo summarizes a completed backup stream.
type BackupInfo struct {
	// EndSeg and EndOff are the server log position one past the
	// archived material — pass them to BackupIncremental to continue
	// the chain.
	EndSeg, EndOff uint64
	// Tuples and Batches count archived snapshot tuples and raw WAL
	// batches.
	Tuples, Batches uint64
}

// Backup streams a full backup archive of the server's database into w.
// The archive is epoch-pinned and produced over the server's lock-free
// snapshot path, so taking it never delays the degradation engine or
// other sessions; degradable payloads cross (and land in w) as
// ciphertext under the server's epoch keys, so archives degrade
// retroactively when the server shreds a key at its LCP deadline. On
// error, any bytes already written to w are an incomplete archive and
// must be discarded.
func (c *Conn) Backup(ctx context.Context, w io.Writer) (*BackupInfo, error) {
	return c.backup(ctx, wire.BackupReq{}, w)
}

// BackupIncremental streams an incremental backup into w, resuming at
// the (EndSeg, EndOff) position reported by the previous archive in the
// chain. A position the server has checkpointed away fails — take a
// fresh full backup.
func (c *Conn) BackupIncremental(ctx context.Context, fromSeg, fromOff uint64, w io.Writer) (*BackupInfo, error) {
	return c.backup(ctx, wire.BackupReq{Incremental: true, FromSeg: fromSeg, FromOff: fromOff}, w)
}

func (c *Conn) backup(ctx context.Context, req wire.BackupReq, w io.Writer) (*BackupInfo, error) {
	return c.chunkStream(ctx, wire.OpBackup, wire.EncodeBackupReq(req), w)
}

// ExportKeys streams the server's epoch key store into w (the raw
// keys.db byte stream). Shard bootstrap pairs it with Backup: the
// restored copy decodes every archived payload whose key was still live
// at export time, while keys shredded before the export stay gone —
// expired material restores erased on the new shard too. The stream
// carries live key material; treat w with the same care as the server's
// own key file.
func (c *Conn) ExportKeys(ctx context.Context, w io.Writer) error {
	_, err := c.chunkStream(ctx, wire.OpKeyExport, nil, w)
	return err
}

// chunkStream requests op and drains the OpBackupChunk/OpBackupDone
// reply stream into w.
func (c *Conn) chunkStream(ctx context.Context, op byte, payload []byte, w io.Writer) (*BackupInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	stop := c.watchCtx(ctx)
	defer stop()
	if err := wire.WriteFrame(c.nc, op, payload); err != nil {
		c.poison()
		return nil, c.ctxErr(ctx, err)
	}
	for {
		op, payload, err := wire.ReadFrame(c.br, c.cfg.maxFrame)
		if err != nil {
			c.poison()
			return nil, c.ctxErr(ctx, err)
		}
		switch op {
		case wire.OpBackupChunk:
			if _, err := w.Write(payload); err != nil {
				// The stream is mid-flight; abandoning it desyncs the
				// session, so the connection must go with it.
				c.poison()
				return nil, err
			}
		case wire.OpBackupDone:
			done, err := wire.DecodeBackupDone(payload)
			if err != nil {
				c.poison()
				return nil, err
			}
			return &BackupInfo{EndSeg: done.EndSeg, EndOff: done.EndOff,
				Tuples: done.Tuples, Batches: done.Batches}, nil
		case wire.OpError:
			werr, derr := wire.DecodeError(payload)
			if derr != nil {
				c.poison()
				return nil, derr
			}
			if werr.Fatal() {
				c.poison()
			}
			return nil, werr
		default:
			c.poison()
			return nil, fmt.Errorf("client: unexpected backup reply opcode %#x", op)
		}
	}
}

// Ping checks server liveness over the session.
func (c *Conn) Ping(ctx context.Context) error {
	op, _, err := c.roundTripLocked(ctx, wire.OpPing, nil)
	if err != nil {
		return err
	}
	if op != wire.OpPong {
		return fmt.Errorf("client: unexpected ping reply opcode %#x", op)
	}
	return nil
}

// Stats fetches a point-in-time snapshot of the server's metrics as a
// flat key→value map. Keys are the exposition sample names — histograms
// appear as their `_count` and `_sum` series, vectors as one key per
// label value (e.g. `instantdb_queries_total{purpose="billing"}`). The
// map is empty when the server's database was opened without metrics.
func (c *Conn) Stats(ctx context.Context) (map[string]float64, error) {
	op, payload, err := c.roundTripLocked(ctx, wire.OpStats, nil)
	if err != nil {
		return nil, err
	}
	if op != wire.OpStatsReply {
		return nil, fmt.Errorf("client: unexpected stats reply opcode %#x", op)
	}
	stats, err := wire.DecodeStats(payload)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(stats))
	for _, s := range stats {
		out[s.Key] = s.Value
	}
	return out, nil
}

// ShardCheck pins the routing-table version this session routes under
// and returns the version the shard had stored before the check. The
// shard persists the highest version it has seen; presenting an older
// one fails with ErrShardStale (fatal) — a router must reload its table,
// never route with a stale one. Servers predating sharding reject the
// opcode with a protocol error, which is equally loud.
func (c *Conn) ShardCheck(ctx context.Context, version uint64) (stored uint64, err error) {
	op, payload, err := c.roundTripLocked(ctx, wire.OpShardCheck, wire.EncodeShardCheck(version))
	if err != nil {
		return 0, err
	}
	if op != wire.OpShardCheckReply {
		return 0, fmt.Errorf("client: unexpected shard-check reply opcode %#x", op)
	}
	return wire.DecodeShardCheckReply(payload)
}

// Schema fetches the server's catalog DDL script (the same append-only
// script replication ships). The shard router parses it to learn table
// shapes for routing; tooling can use it to inspect a remote schema.
func (c *Conn) Schema(ctx context.Context) (string, error) {
	op, payload, err := c.roundTripLocked(ctx, wire.OpSchema, nil)
	if err != nil {
		return "", err
	}
	if op != wire.OpSchemaReply {
		return "", fmt.Errorf("client: unexpected schema reply opcode %#x", op)
	}
	return string(payload), nil
}

// request performs one request round trip and decodes the result frame.
func (c *Conn) request(ctx context.Context, op byte, payload []byte) (*Result, error) {
	rop, rp, err := c.roundTripLocked(ctx, op, payload)
	if err != nil {
		return nil, err
	}
	if rop != wire.OpResult {
		return nil, fmt.Errorf("client: unexpected reply opcode %#x", rop)
	}
	wres, err := wire.DecodeResult(rp)
	if err != nil {
		return nil, err
	}
	res := &Result{RowsAffected: int(wres.RowsAffected), LastInsertID: wres.LastInsertID}
	if wres.Rows != nil {
		res.Rows = &Rows{Columns: wres.Rows.Columns, Data: wres.Rows.Data}
	}
	return res, nil
}

func (c *Conn) roundTripLocked(ctx context.Context, op byte, payload []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundTrip(ctx, op, payload)
}

// roundTrip writes one frame and reads the reply, honoring the context
// deadline and cancellation. Server-reported errors come back as *Error;
// fatal ones poison the connection. Caller holds c.mu (or owns the Conn
// exclusively, during Dial).
func (c *Conn) roundTrip(ctx context.Context, op byte, payload []byte) (byte, []byte, error) {
	if c.closed {
		return 0, nil, ErrClosed
	}
	stop := c.watchCtx(ctx)
	defer stop()

	if err := wire.WriteFrame(c.nc, op, payload); err != nil {
		c.poison()
		return 0, nil, c.ctxErr(ctx, err)
	}
	rop, rp, err := wire.ReadFrame(c.br, c.cfg.maxFrame)
	if err != nil {
		c.poison()
		return 0, nil, c.ctxErr(ctx, err)
	}
	if rop == wire.OpError {
		werr, derr := wire.DecodeError(rp)
		if derr != nil {
			c.poison()
			return 0, nil, derr
		}
		if werr.Fatal() {
			c.poison()
		}
		return 0, nil, werr
	}
	return rop, rp, nil
}

// watchCtx applies the context deadline to the socket and interrupts the
// round trip if the context is canceled mid-flight. The generation
// counter keeps a watcher that loses the race against stop — its
// context was canceled right as the round trip completed — from
// poisoning the deadline of a later round trip.
func (c *Conn) watchCtx(ctx context.Context) (stop func()) {
	c.deadlineMu.Lock()
	c.deadlineGen++
	gen := c.deadlineGen
	if deadline, ok := ctx.Deadline(); ok {
		c.nc.SetDeadline(deadline)
	} else {
		c.nc.SetDeadline(time.Time{})
	}
	c.deadlineMu.Unlock()
	if ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			c.deadlineMu.Lock()
			if c.deadlineGen == gen {
				// Unblock the in-flight read/write immediately.
				c.nc.SetDeadline(time.Unix(1, 0))
			}
			c.deadlineMu.Unlock()
		case <-done:
		}
	}()
	return func() { close(done) }
}

// ctxErr prefers the context's error over the socket's when the context
// ended the round trip.
func (c *Conn) ctxErr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// poison marks the session unusable after a fatal transport or protocol
// failure: request/response framing may be out of sync.
func (c *Conn) poison() {
	if !c.closed {
		c.closed = true
		c.nc.Close()
	}
}
