// Command instantdb-router fronts a horizontally sharded InstantDB
// deployment: it speaks the internal/wire protocol to clients and to
// every shard, routing single-key INSERT/UPDATE/DELETE and point
// SELECTs to the shard owning the key, fanning scans out scatter-gather
// and merging the results, and broadcasting DDL. Purpose enforcement
// and degradation stay per-shard: every downstream session carries the
// client's purpose, and each shard's own clock enforces its LCP
// deadlines — the router adds no trust and holds no data.
//
// Usage:
//
//	instantdb-router -table routing.json [-listen :7660]
//	                 [-shards name=addr,name=addr ...]
//	                 [-max-conns 0] [-max-frame 4194304]
//	                 [-metrics-listen :7661] [-trace-sample 0]
//	                 [-v]
//
// -table names the persisted routing table. With -shards the router
// generates a fresh version-1 table spreading the slot space uniformly
// over the named shards, saves it to -table, and serves it; without
// -shards the table is loaded from -table. At start (and again at every
// downstream dial) the router presents the table's version to each
// shard, which persists the highest version it has seen — a router
// holding a stale table is refused loudly instead of misrouting.
//
// -metrics-listen serves GET /metrics with the AGGREGATED deployment
// view: per-shard stats rolled up (lag-style gauges and latency
// quantile columns like request_seconds_p99 as max over shards —
// "the worst shard" — counters summed) plus the router's own
// instruments, /healthz,
// /debug/traces (the router's recent and slow traces) and
// /debug/pprof/* (the Go profiler) — all on a separate HTTP listener,
// never a session slot, so a scraper or a long CPU profile cannot
// starve the wire protocol.
//
// -trace-sample samples router-side request tracing (0 = only traces
// forced by clients via degradectl trace, 1 = every request, n = one
// in n). A traced statement propagates its trace context to every
// shard it touches, so `degradectl trace -id` against the router
// returns one stitched cross-shard span tree.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"instantdb/internal/server"
	"instantdb/internal/shard"
	"instantdb/internal/wire"
)

func main() {
	listen := flag.String("listen", ":7660", "TCP listen address")
	tablePath := flag.String("table", "", "routing-table JSON file (required; created when -shards is given)")
	shards := flag.String("shards", "", "comma-separated name=addr list: generate a fresh version-1 routing table over these shards, save it to -table and serve it")
	maxConns := flag.Int("max-conns", 0, "max concurrent client sessions (0 = unlimited)")
	maxFrame := flag.Int("max-frame", wire.MaxFrameDefault, "max request/response payload bytes")
	metricsListen := flag.String("metrics-listen", "", "HTTP listen address for GET /metrics (aggregated per-shard rollup), /healthz, /debug/traces and /debug/pprof (empty = disabled); served on its own listener so scrapers and profilers never consume a session slot")
	traceSample := flag.Int("trace-sample", 0, "router trace sampling: 0 = only remote-forced traces, 1 = every request, n = one request in n")
	slowTrace := flag.Duration("slow-trace", 0, "slow-trace ring threshold for /debug/traces (0 = 100ms default)")
	verbose := flag.Bool("v", false, "log per-connection diagnostics")
	flag.Parse()

	if *tablePath == "" {
		fmt.Fprintln(os.Stderr, "instantdb-router: -table is required")
		os.Exit(2)
	}
	var table *shard.Table
	var err error
	if *shards != "" {
		var infos []shard.Info
		if infos, err = parseShards(*shards); err == nil {
			table = shard.Uniform(infos)
			err = table.Save(*tablePath)
		}
	} else {
		table, err = shard.Load(*tablePath)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "instantdb-router: %v\n", err)
		os.Exit(2)
	}

	opts := shard.Options{MaxConns: *maxConns, MaxFrame: *maxFrame, TablePath: *tablePath,
		TraceSample: *traceSample, SlowTrace: *slowTrace}
	if *verbose {
		opts.Logf = log.Printf
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	r, err := shard.New(ctx, table, opts)
	cancel()
	if err != nil {
		log.Fatalf("instantdb-router: %v", err)
	}

	var metricsSrv *http.Server
	if *metricsListen != "" {
		metricsSrv = &http.Server{Addr: *metricsListen, Handler: metricsHandler(r)}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("instantdb-router: metrics listener: %v", err)
			}
		}()
		log.Printf("instantdb-router: metrics on http://%s/metrics", *metricsListen)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- r.ListenAndServe(*listen) }()
	for i := 0; i < 100 && r.Addr() == nil; i++ {
		select {
		case err := <-done:
			log.Fatalf("instantdb-router: %v", err)
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
	log.Printf("instantdb-router: routing table v%d over %d shards, serving on %s",
		r.Table().Version, len(r.Table().Shards), r.Addr())

	select {
	case s := <-sig:
		log.Printf("instantdb-router: %v — draining sessions", s)
	case err := <-done:
		if err != nil {
			log.Printf("instantdb-router: serve: %v", err)
		}
	}
	if err := r.Close(); err != nil {
		log.Printf("instantdb-router: close: %v", err)
	}
	if metricsSrv != nil {
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := metricsSrv.Shutdown(sctx); err != nil {
			log.Printf("instantdb-router: metrics shutdown: %v", err)
		}
		scancel()
	}
	log.Printf("instantdb-router: closed cleanly")
}

// parseShards parses "name=addr,name=addr" into shard infos.
func parseShards(s string) ([]shard.Info, error) {
	var out []shard.Info
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr, ok := strings.Cut(part, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("instantdb-router: bad -shards entry %q (want name=addr)", part)
		}
		out = append(out, shard.Info{Name: name, Addr: addr})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("instantdb-router: -shards named no shards")
	}
	return out, nil
}

// metricsHandler serves the aggregated deployment view: each scrape
// performs one stats rollup across the shards (so the exposition is
// live) and renders the merged samples in Prometheus text form.
func metricsHandler(r *shard.Router) http.Handler {
	mux := http.NewServeMux()
	server.AttachDebug(mux, r.Tracer())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		ctx, cancel := context.WithTimeout(req.Context(), 10*time.Second)
		defer cancel()
		stats := r.MergedStats(ctx)
		sort.Slice(stats, func(i, j int) bool { return stats[i].Key < stats[j].Key })
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		for _, s := range stats {
			fmt.Fprintf(&b, "%s %v\n", s.Key, s.Value)
		}
		_, _ = w.Write([]byte(b.String()))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}
