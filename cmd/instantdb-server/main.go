// Command instantdb-server serves an InstantDB database over TCP with
// the internal/wire protocol. Each client connection gets its own
// session (purpose, transaction), so remote clients observe the same
// purpose-limited accuracy views as embedded sessions. The degradation
// engine keeps running server-side: remote data expires on schedule
// whether or not anyone is connected.
//
// Usage:
//
//	instantdb-server [-dir path] [-log shred|plain|vacuum] [-tick 1s]
//	                 [-listen :7654] [-max-conns 0] [-max-frame 4194304]
//	                 [-max-stmts 64] [-replica-of host:port]
//	                 [-wal-segment-bytes N] [-wal-nosync] [-v]
//
// -dir empty (the default) serves an in-memory database; -log picks the
// log-degradation strategy for durable ones (default shred). -max-conns
// caps concurrent sessions (0 = unlimited), -max-frame bounds request
// and response payloads in bytes, and -max-stmts caps prepared
// statements per session (LRU eviction past the cap).
// -wal-segment-bytes tunes the WAL rotation threshold and -wal-nosync
// disables the per-commit fsync (see its usage text for the durability
// caveat).
//
// -replica-of starts the server as a read replica of another
// instantdb-server: it streams the leader's WAL, applies batches
// locally, serves snapshot reads, and refuses writes with a dedicated
// error code. Its degradation engine runs on its OWN clock, so LCP
// deadlines are enforced even while the leader is unreachable.
//
// SIGINT/SIGTERM shut down gracefully: stop accepting, close live
// sessions (rolling back their open transactions), then close the
// database so the degradation engine stops cleanly.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"instantdb"
	"instantdb/internal/repl"
	"instantdb/internal/server"
	"instantdb/internal/wire"
)

func main() {
	dir := flag.String("dir", "", "database directory (empty = in-memory)")
	logMode := flag.String("log", "shred", "log mode for durable databases: shred, plain, vacuum")
	tick := flag.Duration("tick", time.Second, "background degradation tick interval (0 = manual)")
	listen := flag.String("listen", ":7654", "TCP listen address")
	maxConns := flag.Int("max-conns", 0, "max concurrent client sessions (0 = unlimited)")
	maxFrame := flag.Int("max-frame", wire.MaxFrameDefault, "max request/response payload bytes")
	maxStmts := flag.Int("max-stmts", server.DefaultMaxStmts, "max prepared statements per session (LRU eviction past the cap)")
	replicaOf := flag.String("replica-of", "", "run as a read replica of the leader at host:port (writes are refused; degradation still runs locally)")
	walSegBytes := flag.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold in bytes (0 = default 1 MiB)")
	walNoSync := flag.Bool("wal-nosync", false, "disable the per-commit WAL fsync — faster commits, but an OS crash or power loss can silently lose the most recent commits AND the degradation transitions recorded in them, so recovered data may briefly outlive its LCP deadline until the next tick re-degrades it")
	verbose := flag.Bool("v", false, "log per-connection diagnostics")
	flag.Parse()

	cfg := instantdb.Config{Dir: *dir, AutoDegrade: *tick, SegmentBytes: *walSegBytes, Replica: *replicaOf != ""}
	if *walNoSync {
		sync := false
		cfg.WALSync = &sync
	}
	var err error
	if cfg.LogMode, err = instantdb.ParseLogMode(*logMode); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	db, err := instantdb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}

	opts := server.Options{MaxConns: *maxConns, MaxFrame: *maxFrame, MaxStmts: *maxStmts}
	if *verbose {
		opts.Logf = log.Printf
	}
	srv := server.New(db, opts)

	var follower *repl.Follower
	if *replicaOf != "" {
		follower = &repl.Follower{Addr: *replicaOf, DB: db, MaxFrame: *maxFrame, Logf: log.Printf}
		follower.Start()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*listen) }()

	// Give the listener a beat to bind so the startup line is truthful.
	for i := 0; i < 100 && srv.Addr() == nil; i++ {
		select {
		case err := <-done:
			db.Close()
			log.Fatal(err)
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
	role := ""
	if *replicaOf != "" {
		role = fmt.Sprintf(" as replica of %s", *replicaOf)
	}
	log.Printf("instantdb-server: serving %s on %s%s (log=%s tick=%v max-conns=%d)",
		dbName(*dir), srv.Addr(), role, *logMode, *tick, *maxConns)

	select {
	case s := <-sig:
		log.Printf("instantdb-server: %v — draining sessions", s)
		if err := srv.Close(); err != nil {
			log.Printf("instantdb-server: close: %v", err)
		}
	case err := <-done:
		if err != nil {
			log.Printf("instantdb-server: serve: %v", err)
		}
		// Even on an accept failure, drain live sessions (rolling back
		// their open transactions) before closing the database.
		if err := srv.Close(); err != nil {
			log.Printf("instantdb-server: close: %v", err)
		}
	}
	if follower != nil {
		follower.Stop()
	}
	if err := db.Close(); err != nil {
		log.Printf("instantdb-server: db close: %v", err)
		os.Exit(1)
	}
	log.Printf("instantdb-server: database closed cleanly")
}

func dbName(dir string) string {
	if dir == "" {
		return "in-memory database"
	}
	return dir
}
