// Command instantdb-server serves an InstantDB database over TCP with
// the internal/wire protocol. Each client connection gets its own
// session (purpose, transaction), so remote clients observe the same
// purpose-limited accuracy views as embedded sessions. The degradation
// engine keeps running server-side: remote data expires on schedule
// whether or not anyone is connected.
//
// Usage:
//
//	instantdb-server [-dir path] [-log shred|plain|vacuum] [-tick 1s]
//	                 [-listen :7654] [-max-conns 0] [-max-frame 4194304]
//	                 [-max-stmts 64] [-replica-of host:port]
//	                 [-metrics-listen :7655] [-report-interval 0]
//	                 [-wal-segment-bytes N] [-wal-nosync]
//	                 [-wal-group-window 0] [-wal-group-max-bytes N]
//	                 [-wal-no-group-commit] [-trace-sample 0]
//	                 [-slow-query 0] [-v]
//
// -dir empty (the default) serves an in-memory database; -log picks the
// log-degradation strategy for durable ones (default shred). -max-conns
// caps concurrent sessions (0 = unlimited), -max-frame bounds request
// and response payloads in bytes, and -max-stmts caps prepared
// statements per session (LRU eviction past the cap).
// -wal-segment-bytes tunes the WAL rotation threshold and -wal-nosync
// disables the per-commit fsync (see its usage text for the durability
// caveat).
//
// Concurrent commits share their WAL fsync (group commit; see DESIGN.md)
// unless -wal-no-group-commit restores the per-batch baseline.
// -wal-group-window stretches groups further by having the flush leader
// wait for stragglers, and -wal-group-max-bytes caps how much one shared
// fsync covers.
//
// -metrics-listen serves GET /metrics (Prometheus text exposition),
// GET /healthz, GET /debug/traces (recent and slow request traces) and
// GET /debug/pprof/* (the Go profiler) on a separate HTTP listener —
// its own socket, never a session slot, so a scraper or a long CPU
// profile cannot starve the wire protocol. -report-interval logs a
// periodic one-line self-report (degradation lag, sessions, replication
// lag) without requiring a scraper. Both default to off.
//
// -trace-sample controls local request tracing: 0 records only traces
// forced by clients over the wire (degradectl trace, the shard
// router), 1 records every request, n records one request in n.
// -slow-query logs statements at or over the given duration with their
// span breakdown. Traces land in bounded in-memory rings served at
// /debug/traces and over the wire; see DESIGN.md "Tracing & audit
// trail".
//
// -replica-of starts the server as a read replica of another
// instantdb-server: it streams the leader's WAL, applies batches
// locally, serves snapshot reads, and refuses writes with a dedicated
// error code. Its degradation engine runs on its OWN clock, so LCP
// deadlines are enforced even while the leader is unreachable.
//
// SIGINT/SIGTERM shut down gracefully: stop accepting, close live
// sessions (rolling back their open transactions), then close the
// database so the degradation engine stops cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"instantdb"
	"instantdb/internal/repl"
	"instantdb/internal/server"
	"instantdb/internal/wire"
)

func main() {
	dir := flag.String("dir", "", "database directory (empty = in-memory)")
	logMode := flag.String("log", "shred", "log mode for durable databases: shred, plain, vacuum")
	tick := flag.Duration("tick", time.Second, "background degradation tick interval (0 = manual)")
	listen := flag.String("listen", ":7654", "TCP listen address")
	maxConns := flag.Int("max-conns", 0, "max concurrent client sessions (0 = unlimited)")
	maxFrame := flag.Int("max-frame", wire.MaxFrameDefault, "max request/response payload bytes")
	maxStmts := flag.Int("max-stmts", server.DefaultMaxStmts, "max prepared statements per session (LRU eviction past the cap)")
	replicaOf := flag.String("replica-of", "", "run as a read replica of the leader at host:port (writes are refused; degradation still runs locally)")
	walSegBytes := flag.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold in bytes (0 = default 1 MiB)")
	metricsListen := flag.String("metrics-listen", "", "HTTP listen address for GET /metrics (Prometheus text) and /healthz (empty = disabled); served on its own listener so scrapers never consume a session slot")
	reportInterval := flag.Duration("report-interval", 0, "log a one-line self-report (degradation lag, queue depth, sessions, replication lag) at this interval (0 = disabled)")
	walNoSync := flag.Bool("wal-nosync", false, "disable the per-commit WAL fsync — faster commits, but an OS crash or power loss can silently lose the most recent commits AND the degradation transitions recorded in them, so recovered data may briefly outlive its LCP deadline until the next tick re-degrades it")
	walGroupWindow := flag.Duration("wal-group-window", 0, "group-commit window: how long a flush leader waits for more committers before the shared fsync (0 = flush immediately; natural batching still amortizes under load). Raising it trades per-commit latency for fewer fsyncs")
	walGroupMaxBytes := flag.Int64("wal-group-max-bytes", 0, "max bytes of commit batches flushed under one group fsync (0 = default 1 MiB); oversized queues split across several fsyncs")
	walNoGroupCommit := flag.Bool("wal-no-group-commit", false, "disable WAL group commit: every commit batch pays its own fsync (the pre-group baseline; mainly for benchmarking)")
	traceSample := flag.Int("trace-sample", 0, "local trace sampling: 0 = only remote-forced traces, 1 = every request, n = one request in n")
	slowQuery := flag.Duration("slow-query", 0, "log statements taking at least this long, with span breakdown when traced (0 = disabled)")
	verbose := flag.Bool("v", false, "log per-connection diagnostics")
	flag.Parse()

	cfg := instantdb.Config{Dir: *dir, AutoDegrade: *tick, SegmentBytes: *walSegBytes, Replica: *replicaOf != "",
		GroupWindow: *walGroupWindow, GroupMaxBytes: *walGroupMaxBytes, NoGroupCommit: *walNoGroupCommit,
		TraceSample: *traceSample, SlowQuery: *slowQuery}
	if *walNoSync {
		sync := false
		cfg.WALSync = &sync
	}
	var err error
	if cfg.LogMode, err = instantdb.ParseLogMode(*logMode); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	db, err := instantdb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}

	opts := server.Options{MaxConns: *maxConns, MaxFrame: *maxFrame, MaxStmts: *maxStmts,
		SlowQuery: *slowQuery, SlowLogf: log.Printf}
	if *verbose {
		opts.Logf = log.Printf
	}
	srv := server.New(db, opts)

	var follower *repl.Follower
	if *replicaOf != "" {
		follower = &repl.Follower{Addr: *replicaOf, DB: db, MaxFrame: *maxFrame, Logf: log.Printf}
		follower.Instrument(db.Metrics())
		follower.Start()
	}

	var metricsSrv *http.Server
	if *metricsListen != "" {
		metricsSrv = &http.Server{Addr: *metricsListen, Handler: server.MetricsHandler(db)}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("instantdb-server: metrics listener: %v", err)
			}
		}()
		log.Printf("instantdb-server: metrics on http://%s/metrics", *metricsListen)
	}

	stopReport := make(chan struct{})
	if *reportInterval > 0 {
		go selfReport(db, follower, *reportInterval, stopReport)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*listen) }()

	// Give the listener a beat to bind so the startup line is truthful.
	for i := 0; i < 100 && srv.Addr() == nil; i++ {
		select {
		case err := <-done:
			db.Close()
			log.Fatal(err)
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
	role := ""
	if *replicaOf != "" {
		role = fmt.Sprintf(" as replica of %s", *replicaOf)
	}
	log.Printf("instantdb-server: serving %s on %s%s (log=%s tick=%v max-conns=%d)",
		dbName(*dir), srv.Addr(), role, *logMode, *tick, *maxConns)

	select {
	case s := <-sig:
		log.Printf("instantdb-server: %v — draining sessions", s)
		if err := srv.Close(); err != nil {
			log.Printf("instantdb-server: close: %v", err)
		}
	case err := <-done:
		if err != nil {
			log.Printf("instantdb-server: serve: %v", err)
		}
		// Even on an accept failure, drain live sessions (rolling back
		// their open transactions) before closing the database.
		if err := srv.Close(); err != nil {
			log.Printf("instantdb-server: close: %v", err)
		}
	}
	close(stopReport)
	if metricsSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := metricsSrv.Shutdown(ctx); err != nil {
			log.Printf("instantdb-server: metrics shutdown: %v", err)
		}
		cancel()
	}
	if follower != nil {
		follower.Stop()
	}
	if err := db.Close(); err != nil {
		log.Printf("instantdb-server: db close: %v", err)
		os.Exit(1)
	}
	log.Printf("instantdb-server: database closed cleanly")
}

// selfReport logs a periodic one-line health summary built from the
// same sources the /metrics exposition reads: the degradation engine's
// lag and queue depth (the headline SLO), live session count, and —
// when running as a replica — replication lag. One line per interval,
// grep-friendly, no scraper required.
func selfReport(db *instantdb.DB, follower *repl.Follower, every time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			lag := db.Degrader().Lag(db.Clock().Now())
			st := db.Degrader().Stats()
			line := fmt.Sprintf("self-report: degrade_lag=%.3fs pending=%d transitions=%d conns=%.0f",
				lag.Seconds(), st.Pending, st.Transitions, statValue(db, "instantdb_server_active_conns"))
			if p99 := statValue(db, `instantdb_server_request_seconds_p99{op="exec"}`); p99 > 0 {
				line += fmt.Sprintf(" exec_p99=%.3fms", 1000*p99)
			}
			if follower != nil {
				line += fmt.Sprintf(" repl_connected=%v repl_lag_bytes=%d", follower.Connected(), follower.LagBytes())
			}
			log.Printf("instantdb-server: %s", line)
		}
	}
}

// statValue reads one sample from the registry snapshot (0 if absent).
func statValue(db *instantdb.DB, key string) float64 {
	for _, s := range db.Metrics().Snapshot() {
		if s.Key == key {
			return s.Value
		}
	}
	return 0
}

func dbName(dir string) string {
	if dir == "" {
		return "in-memory database"
	}
	return dir
}
