// Command instantdb-server serves an InstantDB database over TCP with
// the internal/wire protocol. Each client connection gets its own
// session (purpose, transaction), so remote clients observe the same
// purpose-limited accuracy views as embedded sessions. The degradation
// engine keeps running server-side: remote data expires on schedule
// whether or not anyone is connected.
//
// Usage:
//
//	instantdb-server [-dir path] [-log shred|plain|vacuum] [-tick 1s]
//	                 [-listen :7654] [-max-conns 0] [-max-frame 4194304]
//	                 [-max-stmts 64] [-v]
//
// -dir empty (the default) serves an in-memory database; -log picks the
// log-degradation strategy for durable ones (default shred). -max-conns
// caps concurrent sessions (0 = unlimited), -max-frame bounds request
// and response payloads in bytes, and -max-stmts caps prepared
// statements per session (LRU eviction past the cap).
//
// SIGINT/SIGTERM shut down gracefully: stop accepting, close live
// sessions (rolling back their open transactions), then close the
// database so the degradation engine stops cleanly.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"instantdb"
	"instantdb/internal/server"
	"instantdb/internal/wire"
)

func main() {
	dir := flag.String("dir", "", "database directory (empty = in-memory)")
	logMode := flag.String("log", "shred", "log mode for durable databases: shred, plain, vacuum")
	tick := flag.Duration("tick", time.Second, "background degradation tick interval (0 = manual)")
	listen := flag.String("listen", ":7654", "TCP listen address")
	maxConns := flag.Int("max-conns", 0, "max concurrent client sessions (0 = unlimited)")
	maxFrame := flag.Int("max-frame", wire.MaxFrameDefault, "max request/response payload bytes")
	maxStmts := flag.Int("max-stmts", server.DefaultMaxStmts, "max prepared statements per session (LRU eviction past the cap)")
	verbose := flag.Bool("v", false, "log per-connection diagnostics")
	flag.Parse()

	cfg := instantdb.Config{Dir: *dir, AutoDegrade: *tick}
	var err error
	if cfg.LogMode, err = instantdb.ParseLogMode(*logMode); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	db, err := instantdb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}

	opts := server.Options{MaxConns: *maxConns, MaxFrame: *maxFrame, MaxStmts: *maxStmts}
	if *verbose {
		opts.Logf = log.Printf
	}
	srv := server.New(db, opts)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*listen) }()

	// Give the listener a beat to bind so the startup line is truthful.
	for i := 0; i < 100 && srv.Addr() == nil; i++ {
		select {
		case err := <-done:
			db.Close()
			log.Fatal(err)
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
	log.Printf("instantdb-server: serving %s on %s (log=%s tick=%v max-conns=%d)",
		dbName(*dir), srv.Addr(), *logMode, *tick, *maxConns)

	select {
	case s := <-sig:
		log.Printf("instantdb-server: %v — draining sessions", s)
		if err := srv.Close(); err != nil {
			log.Printf("instantdb-server: close: %v", err)
		}
	case err := <-done:
		if err != nil {
			log.Printf("instantdb-server: serve: %v", err)
		}
		// Even on an accept failure, drain live sessions (rolling back
		// their open transactions) before closing the database.
		if err := srv.Close(); err != nil {
			log.Printf("instantdb-server: close: %v", err)
		}
	}
	if err := db.Close(); err != nil {
		log.Printf("instantdb-server: db close: %v", err)
		os.Exit(1)
	}
	log.Printf("instantdb-server: database closed cleanly")
}

func dbName(dir string) string {
	if dir == "" {
		return "in-memory database"
	}
	return dir
}
