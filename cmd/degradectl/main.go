// Command degradectl inspects and operates the degradation machinery of
// a database directory: show policies and pending deadlines, force a
// degradation tick, fire events, run a forensic audit, vacuum the log,
// or checkpoint.
//
// Usage:
//
//	degradectl -dir path [-log shred|plain|vacuum] <command> [args]
//
// -log must name the strategy the database was created with (default
// shred): opening a plain- or vacuum-logged directory with the shred
// codec — or vice versa — fails during WAL replay.
//
// Commands:
//
//	status            catalog summary: tables, policies, purposes, queues
//	tick              run one degradation tick now
//	fire <event>      raise an application event
//	audit <needle>... forensic scan of store+log for the given text needles
//	vacuum            rotate and vacuum the log
//	checkpoint        sync pages and truncate the log
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"instantdb"
	"instantdb/internal/forensic"
)

func main() {
	dir := flag.String("dir", "", "database directory (required)")
	logMode := flag.String("log", "shred", "log mode the database was created with: shred, plain, vacuum")
	flag.Parse()
	if *dir == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: degradectl -dir path [-log shred|plain|vacuum] <status|tick|fire|audit|vacuum|checkpoint> [args]")
		os.Exit(2)
	}
	cfg := instantdb.Config{Dir: *dir}
	var err error
	if cfg.LogMode, err = instantdb.ParseLogMode(*logMode); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	db, err := instantdb.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()

	switch flag.Arg(0) {
	case "status":
		status(db)
	case "tick":
		n, err := db.DegradeNow()
		fail(err)
		fmt.Printf("%d transition(s) enforced\n", n)
	case "fire":
		if flag.NArg() < 2 {
			fail(fmt.Errorf("fire needs an event name"))
		}
		db.FireEvent(flag.Arg(1))
		n, err := db.DegradeNow()
		fail(err)
		fmt.Printf("event %q fired: %d transition(s)\n", flag.Arg(1), n)
	case "audit":
		if flag.NArg() < 2 {
			fail(fmt.Errorf("audit needs at least one needle"))
		}
		var needles []forensic.Needle
		for _, arg := range flag.Args()[1:] {
			needles = append(needles, forensic.NeedleForText(arg, arg))
		}
		rep, err := forensic.ScanStore(db.StorageManager().Store(), needles)
		fail(err)
		walRep, err := forensic.ScanDir(filepath.Join(*dir, "wal"), needles)
		fail(err)
		rep.Merge(walRep)
		fmt.Printf("scanned %d bytes, %d finding(s)\n", rep.BytesScanned, len(rep.Findings))
		for _, f := range rep.Findings {
			fmt.Println(" ", f)
		}
		if !rep.Clean() {
			os.Exit(1)
		}
	case "vacuum":
		fail(db.VacuumLog())
		fmt.Println("log vacuumed")
	case "checkpoint":
		fail(db.Checkpoint())
		fmt.Println("checkpointed: pages synced, log truncated and scrubbed")
	default:
		fail(fmt.Errorf("unknown command %q", flag.Arg(0)))
	}
}

func status(db *instantdb.DB) {
	cat := db.Catalog()
	fmt.Println("tables:")
	for _, tbl := range cat.Tables() {
		ts := db.StorageManager().Table(tbl)
		st := ts.Stats()
		fmt.Printf("  %-16s %6d tuple(s) %4d page(s) layout=%s\n", tbl.Name, st.Tuples, st.Pages, tbl.Layout)
		for _, ci := range tbl.DegradableColumns() {
			col := tbl.Columns[ci]
			fmt.Printf("    degradable %-12s %s\n", col.Name+":", col.Policy.String())
		}
		for _, def := range cat.Indexes(tbl.Name) {
			fmt.Printf("    index %-16s on %s using %s\n", def.Name, tbl.Columns[def.Column].Name, def.Type)
		}
	}
	fmt.Println("purposes:")
	for _, p := range cat.Purposes() {
		fmt.Printf("  %-12s", p.Name)
		for col, lvl := range p.Levels {
			fmt.Printf(" %s@%d", col, lvl)
		}
		if p.AllowUnlisted {
			fmt.Print(" (allow unlisted)")
		}
		fmt.Println()
	}
	st := db.Degrader().Stats()
	fmt.Printf("degrader: %d pending, %d transitions, %d deletions, max lag %v, lock skips %d\n",
		st.Pending, st.Transitions, st.Deletions, st.MaxLag, st.LockSkips)
	if next, ok := db.Degrader().NextDeadline(); ok {
		fmt.Printf("next deadline: %v\n", next)
	}
	if ks := db.KeyStore(); ks != nil {
		fmt.Printf("epoch keys live: %d\n", ks.LiveKeys())
	}
	if l := db.Log(); l != nil {
		fmt.Printf("wal: %d segment(s), %d bytes\n", l.SegmentCount(), l.SizeBytes())
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
