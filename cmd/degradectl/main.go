// Command degradectl inspects and operates the degradation machinery of
// a database directory: show policies and pending deadlines, force a
// degradation tick, fire events, run a forensic audit, vacuum the log,
// checkpoint, and take or restore degradation-preserving backups.
//
// Usage:
//
//	degradectl -dir path [-log shred|plain|vacuum] <command> [args]
//
// -log must name the strategy the database was created with (default
// shred): opening a plain- or vacuum-logged directory with the shred
// codec — or vice versa — fails during WAL replay.
//
// Commands:
//
//	status                 catalog summary: tables, policies, purposes, queues
//	stats [-connect host:port] [-watch 1s] [-all]
//	                       live server metrics over the wire Stats opcode:
//	                       the degradation-critical subset (lag, queue
//	                       depth, shredded keys, sessions, replication
//	                       lag), -all for every key, -watch to re-poll.
//	                       Pointing -connect at an instantdb-router prints
//	                       the aggregated deployment view: lag-style gauges
//	                       as the max over shards, queue depths and
//	                       counters summed, plus per-shard up/down state
//	tick                   run one degradation tick now
//	fire <event>           raise an application event
//	audit [-chain] [-file f]... [needle...]
//	                       forensic scan of store+log+keys (plus extra
//	                       files, e.g. backup archives) for text needles;
//	                       -dir is repeatable here, so one invocation can
//	                       sweep every shard directory of a deployment.
//	                       -chain additionally verifies each directory's
//	                       tamper-evident degradation audit trail (CRC +
//	                       SHA-256 hash chain from genesis) and fails the
//	                       audit on any break
//	trace [-connect host:port] [-exec sql] [-id hex] [-slow]
//	                       request tracing over the wire: -exec runs one
//	                       statement under a forced trace and prints its
//	                       span tree (through a router: the stitched
//	                       cross-shard tree); -id fetches a finished
//	                       trace, -slow the slow ring, default the
//	                       recent ring
//	events [-connect host:port] [-n 20]
//	                       the degradation audit trail's newest events —
//	                       over the wire (a router merges every shard's),
//	                       or locally from -dir
//	vacuum                 rotate and vacuum the log
//	checkpoint             sync pages, truncate the log, compact the keys
//	backup [-base prev] [-connect host:port] <out>
//	                       stream a backup archive: full, or incremental
//	                       resuming where -base ended; -connect streams
//	                       from a running server instead of opening -dir
//	restore -into dir [-keys keys.db] [-no-catchup] <base> [incr...]
//	                       rebuild a database directory from an archive
//	                       chain, then run degrade catch-up on it
//
// Backups taken from a shred-mode database hold degradable payloads as
// ciphertext under the live epoch keys; restore needs the key file
// (-keys, normally the live directory's keys.db) to recover payloads
// whose keys are still alive — everything whose key was shredded is
// restored as permanently Lost, which is the point. Local backup opens
// the directory directly, so only run it against a quiesced database;
// use -connect to back up a live server.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"instantdb"
	"instantdb/client"
	"instantdb/internal/backup"
	"instantdb/internal/forensic"
	"instantdb/internal/server"
	"instantdb/internal/trace"
	"instantdb/internal/wal"
)

const usageText = "usage: degradectl -dir path [-log shred|plain|vacuum] " +
	"<status|stats|tick|fire|audit|trace|events|vacuum|checkpoint|backup|restore> [args]"

func main() {
	var dirs stringList
	flag.Var(&dirs, "dir", "database directory (required for all commands except restore, and backup -connect; repeatable for audit)")
	logMode := flag.String("log", "shred", "log mode the database was created with: shred, plain, vacuum")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, usageText)
		os.Exit(2)
	}
	cmd, rest := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "restore":
		runRestore(*logMode, rest)
		return
	case "backup":
		runBackup(oneDirOrEmpty(dirs), *logMode, rest)
		return
	case "stats":
		runStats(rest)
		return
	case "trace":
		runTrace(rest)
		return
	case "events":
		runEvents(dirs, *logMode, rest)
		return
	case "audit":
		if len(dirs) == 0 {
			fmt.Fprintln(os.Stderr, usageText)
			os.Exit(2)
		}
		runAudit(dirs, *logMode, rest)
		return
	}

	if len(dirs) != 1 {
		fmt.Fprintln(os.Stderr, usageText)
		os.Exit(2)
	}
	db := openDB(dirs[0], *logMode)
	defer db.Close()

	switch cmd {
	case "status":
		status(db)
	case "tick":
		n, err := db.DegradeNow()
		fail(err)
		fmt.Printf("%d transition(s) enforced\n", n)
	case "fire":
		if len(rest) < 1 {
			fail(fmt.Errorf("fire needs an event name"))
		}
		db.FireEvent(rest[0])
		n, err := db.DegradeNow()
		fail(err)
		fmt.Printf("event %q fired: %d transition(s)\n", rest[0], n)
	case "vacuum":
		fail(db.VacuumLog())
		fmt.Println("log vacuumed")
	case "checkpoint":
		fail(db.Checkpoint())
		fmt.Println("checkpointed: pages synced, log truncated and scrubbed, keys compacted")
	default:
		fail(fmt.Errorf("unknown command %q", cmd))
	}
}

// oneDirOrEmpty returns the single -dir value, "" when none was given,
// and fails when several were (only audit sweeps multiple directories).
func oneDirOrEmpty(dirs stringList) string {
	switch len(dirs) {
	case 0:
		return ""
	case 1:
		return dirs[0]
	}
	fail(fmt.Errorf("this command takes exactly one -dir (repeat -dir only with audit)"))
	return ""
}

// openDB opens the database directory with the named log mode.
func openDB(dir, logMode string) *instantdb.DB {
	cfg := instantdb.Config{Dir: dir}
	var err error
	if cfg.LogMode, err = instantdb.ParseLogMode(logMode); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	db, err := instantdb.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return db
}

// stringList collects repeated -file flags.
type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }

// Set implements flag.Value.
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

// runAudit scans each database directory's persistent artifacts — raw
// store pages, WAL segments, the epoch-key file — plus any extra files
// (backup archives) for the given text needles. -dir repeats, so one
// invocation sweeps every shard of a deployment and the exit status
// answers for all of them at once. catalog.sql is deliberately out of
// scope: schema literals (domain trees) legitimately contain level
// labels and are not data leaks.
func runAudit(dirs []string, logMode string, args []string) {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	var files stringList
	fs.Var(&files, "file", "extra file to scan (repeatable), e.g. a backup archive")
	chain := fs.Bool("chain", false, "verify each directory's degradation audit trail (CRC framing + SHA-256 hash chain from genesis); any break fails the audit")
	fail(fs.Parse(args))
	if fs.NArg() < 1 && !*chain {
		fail(fmt.Errorf("audit needs at least one needle (or -chain)"))
	}
	chainBroken := false
	if *chain {
		for _, dir := range dirs {
			n, err := trace.Verify(filepath.Join(dir, "audit"))
			if err != nil {
				fmt.Printf("%s: AUDIT TRAIL BROKEN after %d verified event(s): %v\n", dir, n, err)
				chainBroken = true
				continue
			}
			fmt.Printf("%s: audit chain intact, %d event(s) verified\n", dir, n)
		}
	}
	if fs.NArg() > 0 {
		var needles []forensic.Needle
		for _, arg := range fs.Args() {
			needles = append(needles, forensic.NeedleForText(arg, arg))
		}
		var rep forensic.Report
		for _, dir := range dirs {
			db := openDB(dir, logMode)
			dirRep, err := forensic.ScanStore(db.StorageManager().Store(), needles)
			if err == nil {
				var walRep forensic.Report
				if walRep, err = forensic.ScanDir(filepath.Join(dir, "wal"), needles); err == nil {
					dirRep.Merge(walRep)
					var keyRep forensic.Report
					if keyRep, err = forensic.ScanFile(filepath.Join(dir, "keys.db"), needles); err == nil {
						dirRep.Merge(keyRep)
					}
				}
			}
			db.Close()
			fail(err)
			if len(dirs) > 1 {
				fmt.Printf("%s: %d bytes, %d finding(s)\n", dir, dirRep.BytesScanned, len(dirRep.Findings))
			}
			rep.Merge(dirRep)
		}
		for _, f := range files {
			fileRep, err := forensic.ScanFile(f, needles)
			fail(err)
			rep.Merge(fileRep)
		}
		fmt.Printf("scanned %d bytes, %d finding(s)\n", rep.BytesScanned, len(rep.Findings))
		for _, f := range rep.Findings {
			fmt.Println(" ", f)
		}
		if !rep.Clean() {
			chainBroken = true
		}
	}
	if chainBroken {
		os.Exit(1)
	}
}

// runTrace drives request tracing over the wire. -exec runs one
// statement under a forced trace (through a router, the trace context
// fans out to every shard the statement touches) and prints the
// finished span tree; -id fetches a previously recorded trace; -slow
// and the default fetch the server's slow/recent rings.
func runTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	connect := fs.String("connect", "localhost:7654", "server or router address (host:port)")
	exec := fs.String("exec", "", "run this statement under a forced trace, then print its span tree")
	idStr := fs.String("id", "", "fetch one finished trace by id (hex, as printed)")
	slow := fs.Bool("slow", false, "fetch the slow-trace ring instead of the recent ring")
	purpose := fs.String("purpose", "", "session purpose (for -exec against purpose-bound tables)")
	fail(fs.Parse(args))
	if fs.NArg() != 0 {
		fail(fmt.Errorf("trace takes no positional arguments"))
	}
	var opts []client.Option
	if *purpose != "" {
		opts = append(opts, client.WithPurpose(*purpose))
	}
	ctx := context.Background()
	conn, err := client.Dial(ctx, *connect, opts...)
	fail(err)
	defer conn.Close()

	mode, id := client.TraceRecent, uint64(0)
	switch {
	case *exec != "":
		res, tid, err := conn.ExecTraced(ctx, *exec)
		fail(err)
		if res.Rows != nil {
			fmt.Printf("traced: %d row(s), trace id %016x\n", res.Rows.Len(), tid)
		} else {
			fmt.Printf("traced: %d row(s) affected, trace id %016x\n", res.RowsAffected, tid)
		}
		mode, id = client.TraceByID, tid
	case *idStr != "":
		id, err = strconv.ParseUint(strings.TrimPrefix(*idStr, "0x"), 16, 64)
		fail(err)
		mode = client.TraceByID
	case *slow:
		mode = client.TraceSlow
	}
	recs, err := conn.TraceDump(ctx, mode, id)
	fail(err)
	if len(recs) == 0 {
		fmt.Println("no traces (never recorded, or displaced from the bounded ring)")
		return
	}
	for _, r := range recs {
		server.WriteTraceTree(os.Stdout, r)
	}
}

// runEvents prints the degradation audit trail's newest events: over
// the wire from a running server (a router answers with every shard's
// tails merged by time), or locally by opening -dir.
func runEvents(dirs stringList, logMode string, args []string) {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	connect := fs.String("connect", "", "fetch from a running server or router at host:port instead of opening -dir")
	n := fs.Int("n", 20, "newest events to print (0 = everything retained in memory)")
	fail(fs.Parse(args))
	if fs.NArg() != 0 {
		fail(fmt.Errorf("events takes no positional arguments"))
	}
	var evs []trace.Event
	if *connect != "" {
		conn, err := client.Dial(context.Background(), *connect)
		fail(err)
		defer conn.Close()
		evs, err = conn.AuditTail(context.Background(), *n)
		fail(err)
	} else {
		dir := oneDirOrEmpty(dirs)
		if dir == "" {
			fail(fmt.Errorf("events needs -dir or -connect"))
		}
		db := openDB(dir, logMode)
		defer db.Close()
		evs = db.AuditLog().Tail(*n)
	}
	if len(evs) == 0 {
		fmt.Println("no audit events")
		return
	}
	for i := range evs {
		fmt.Println(evs[i].String())
	}
}

// runBackup streams a backup archive to a file: full, or incremental
// resuming at the end position of the -base archive. With -connect the
// archive streams from a running server; otherwise the -dir directory
// is opened locally (quiesce the database first).
func runBackup(dir, logMode string, args []string) {
	fs := flag.NewFlagSet("backup", flag.ExitOnError)
	base := fs.String("base", "", "previous archive in the chain; produce an incremental resuming at its end position")
	connect := fs.String("connect", "", "stream from a running instantdb-server at host:port instead of opening -dir")
	fail(fs.Parse(args))
	if fs.NArg() != 1 {
		fail(fmt.Errorf("backup needs exactly one output path"))
	}
	outPath := fs.Arg(0)

	var from wal.Pos
	if *base != "" {
		bf, err := os.Open(*base)
		fail(err)
		hdr, err := backup.ReadHeader(bf)
		bf.Close()
		fail(err)
		from = hdr.End
	}

	out, err := os.OpenFile(outPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	fail(err)

	var sum *backup.Summary
	if *connect != "" {
		conn, err := client.Dial(context.Background(), *connect)
		fail(err)
		defer conn.Close()
		var info *client.BackupInfo
		if *base == "" {
			info, err = conn.Backup(context.Background(), out)
		} else {
			info, err = conn.BackupIncremental(context.Background(), uint64(from.Seg), uint64(from.Off), out)
		}
		fail(err)
		sum = &backup.Summary{
			Incremental: *base != "",
			From:        from,
			End:         wal.Pos{Seg: int(info.EndSeg), Off: int64(info.EndOff)},
			Tuples:      int(info.Tuples),
			Batches:     int(info.Batches),
		}
		// The wire summary has no epoch; read it back from the archive
		// header, which also validates the file landed intact — a
		// failure here means the archive on disk is unusable.
		rf, err := os.Open(outPath)
		fail(err)
		hdr, err := backup.ReadHeader(rf)
		rf.Close()
		fail(err)
		sum.Epoch = hdr.Epoch
	} else {
		if dir == "" {
			fail(fmt.Errorf("backup needs -dir (or -connect)"))
		}
		db := openDB(dir, logMode)
		defer db.Close()
		if *base == "" {
			sum, err = backup.Full(db, out)
		} else {
			sum, err = backup.Incremental(db, from, out)
		}
		fail(err)
	}
	fail(out.Sync())
	fail(out.Close())
	if sum.Incremental {
		fmt.Printf("incremental backup: %d batch(es), %v -> %v\n", sum.Batches, sum.From, sum.End)
	} else {
		fmt.Printf("full backup: %d tuple(s) at epoch %d, next incremental from %v\n", sum.Tuples, sum.Epoch, sum.End)
	}
}

// statsHeadlines is the degradation-critical subset stats prints by
// default, in display order: is data expiring on time (lag, queue),
// what has been enforced (transitions, erasures, shredded keys), and
// is the serving/replication path healthy.
var statsHeadlines = []string{
	"instantdb_degrade_lag_seconds",
	"instantdb_degrade_max_lag_seconds",
	"instantdb_degrade_queue_depth",
	"instantdb_degrade_transitions_total",
	"instantdb_degrade_erasures_total",
	"instantdb_degrade_deletions_total",
	"instantdb_wal_keys_shredded_total",
	"instantdb_keystore_live_keys",
	"instantdb_server_active_conns",
	"instantdb_repl_connected",
	"instantdb_repl_lag_bytes",
	"instantdb_repl_last_contact_seconds",
	// Router rollup (present when -connect points at instantdb-router):
	// the deployment-wide view — worst shard lag, table version, fleet
	// size.
	"instantdb_router_degrade_lag_max_seconds",
	"instantdb_router_table_version",
	"instantdb_router_shards",
	"instantdb_router_active_conns",
}

// runStats polls a running server's metrics snapshot over the wire
// Stats opcode and prints it: the degradation-critical subset by
// default, every key with -all, repeatedly with -watch.
func runStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	connect := fs.String("connect", "localhost:7654", "server address (host:port)")
	watch := fs.Duration("watch", 0, "re-poll and re-print at this interval (0 = print once)")
	all := fs.Bool("all", false, "print every metric key, not just the degradation-critical subset")
	fail(fs.Parse(args))
	if fs.NArg() != 0 {
		fail(fmt.Errorf("stats takes no positional arguments"))
	}
	conn, err := client.Dial(context.Background(), *connect)
	fail(err)
	defer conn.Close()
	for {
		m, err := conn.Stats(context.Background())
		fail(err)
		printStats(m, *all, *watch > 0)
		if *watch <= 0 {
			return
		}
		time.Sleep(*watch)
	}
}

// printStats renders one metrics snapshot. Watch mode stamps each
// block so scrollback reads as a time series.
func printStats(m map[string]float64, all, stamped bool) {
	if stamped {
		fmt.Printf("-- %s\n", time.Now().Format(time.RFC3339))
	}
	if len(m) == 0 {
		fmt.Println("(server has metrics disabled)")
		return
	}
	if all {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%-56s %g\n", k, m[k])
		}
		return
	}
	for _, k := range statsHeadlines {
		if v, ok := m[k]; ok {
			fmt.Printf("%-44s %g\n", k, v)
		}
	}
	// Request-latency quantiles, one row per op label, from the
	// snapshot's interpolated histogram columns.
	const latPrefix = `instantdb_server_request_seconds_p50{op="`
	var ops []string
	for k := range m {
		if strings.HasPrefix(k, latPrefix) && strings.HasSuffix(k, `"}`) {
			ops = append(ops, k[len(latPrefix):len(k)-2])
		}
	}
	sort.Strings(ops)
	for _, op := range ops {
		label := fmt.Sprintf(`{op=%q}`, op)
		fmt.Printf("%-44s p50=%.3fms p99=%.3fms\n",
			"instantdb_server_request_seconds"+label,
			1000*m["instantdb_server_request_seconds_p50"+label],
			1000*m["instantdb_server_request_seconds_p99"+label])
	}
	// Per-shard reachability from a router rollup, sorted for stable
	// output.
	var shardKeys []string
	for k := range m {
		if strings.HasPrefix(k, "instantdb_router_shard_up{") {
			shardKeys = append(shardKeys, k)
		}
	}
	sort.Strings(shardKeys)
	for _, k := range shardKeys {
		fmt.Printf("%-44s %g\n", k, m[k])
	}
}

// runRestore rebuilds a database directory from an archive chain and
// (unless -no-catchup) opens it once — in the global -log mode, which
// must match the SOURCE database's mode — to fire every LCP transition
// whose deadline passed while the data sat archived.
func runRestore(logMode string, args []string) {
	fs := flag.NewFlagSet("restore", flag.ExitOnError)
	into := fs.String("into", "", "target database directory (must not exist)")
	keys := fs.String("keys", "", "epoch-key file (the live database's keys.db); omitted, every sealed payload restores as Lost")
	noCatchup := fs.Bool("no-catchup", false, "skip the degrade catch-up pass after restoring")
	fail(fs.Parse(args))
	if *into == "" || fs.NArg() < 1 {
		fail(fmt.Errorf("restore needs -into and at least one archive (base first)"))
	}
	archives := make([]io.Reader, 0, fs.NArg())
	files := make([]*os.File, 0, fs.NArg())
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, p := range fs.Args() {
		f, err := os.Open(p)
		fail(err)
		files = append(files, f)
		archives = append(archives, f)
	}
	sum, err := backup.Restore(backup.RestoreOptions{Dir: *into, KeysPath: *keys}, archives...)
	fail(err)
	fmt.Printf("restored %d tuple(s), %d batch(es); %d payload(s) lost, %d attribute(s) erased (up to %v)\n",
		sum.Tuples, sum.Batches, sum.Lost, sum.Erased, sum.End)
	if *noCatchup {
		return
	}
	db := openDB(*into, logMode)
	n, err := db.DegradeNow()
	if err != nil {
		db.Close()
		fail(err)
	}
	fail(db.Close())
	fmt.Printf("degrade catch-up: %d transition(s) enforced\n", n)
}

func status(db *instantdb.DB) {
	cat := db.Catalog()
	fmt.Println("tables:")
	for _, tbl := range cat.Tables() {
		ts := db.StorageManager().Table(tbl)
		st := ts.Stats()
		fmt.Printf("  %-16s %6d tuple(s) %4d page(s) layout=%s\n", tbl.Name, st.Tuples, st.Pages, tbl.Layout)
		for _, ci := range tbl.DegradableColumns() {
			col := tbl.Columns[ci]
			fmt.Printf("    degradable %-12s %s\n", col.Name+":", col.Policy.String())
		}
		for _, def := range cat.Indexes(tbl.Name) {
			fmt.Printf("    index %-16s on %s using %s\n", def.Name, tbl.Columns[def.Column].Name, def.Type)
		}
	}
	fmt.Println("purposes:")
	for _, p := range cat.Purposes() {
		fmt.Printf("  %-12s", p.Name)
		for col, lvl := range p.Levels {
			fmt.Printf(" %s@%d", col, lvl)
		}
		if p.AllowUnlisted {
			fmt.Print(" (allow unlisted)")
		}
		fmt.Println()
	}
	st := db.Degrader().Stats()
	fmt.Printf("degrader: %d pending, %d transitions, %d deletions, max lag %v, lock skips %d\n",
		st.Pending, st.Transitions, st.Deletions, st.MaxLag, st.LockSkips)
	if next, ok := db.Degrader().NextDeadline(); ok {
		fmt.Printf("next deadline: %v\n", next)
	}
	if ks := db.KeyStore(); ks != nil {
		fmt.Printf("epoch keys live: %d (key file %d bytes)\n", ks.LiveKeys(), ks.SizeBytes())
	}
	if l := db.Log(); l != nil {
		fmt.Printf("wal: %d segment(s), %d bytes\n", l.SegmentCount(), l.SizeBytes())
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
