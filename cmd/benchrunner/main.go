// Command benchrunner regenerates every experiment of the reproduction:
// the paper's three figures (F1–F3), the three quantified claims
// (E1–E3), and the §III engineering ablations (B-STORE, B-LOG, B-IDX,
// B-TXN, B-REC). EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	benchrunner [-exp all|F1|F2|F3|E1|E2|E3|BSTORE|BLOG|BIDX|BTXN|BREC|METRICS|SHARD|GROUPCOMMIT|TRACE|LOAD]
//	            [-n tuples] [-quick] [-benchjson out.json]
//
// The METRICS experiment measures the observability layer's overhead on
// the insert/select hot paths (database opened with metrics vs without)
// and, with -benchjson, records the ns/op, allocations, and relative
// delta to a JSON file (the committed reference is BENCH_PR6.json; the
// PR 6 budget is <2% per path).
//
// The SHARD experiment compares insert, point-select and full-scan
// throughput through the router on a 1-shard vs a 3-shard deployment
// (the 3-shard side runs two router front ends, driven round-robin).
// With -benchjson it records the ns/op and ops/sec per phase and side
// (the committed reference is BENCH_PR7.json).
//
// The GROUPCOMMIT experiment measures durable commit throughput and
// fsyncs per commit at 1/8/32 concurrent sessions, per-batch fsync
// (-wal-no-group-commit) vs group commit (the committed reference is
// BENCH_PR8.json; the PR 8 bar is >=2x commits/sec at 32 sessions with
// <0.5 fsyncs/commit).
//
// The TRACE experiment measures the request tracer's overhead on the
// insert/select hot paths across three configurations — tracing off,
// the unsampled wrapper (sampling branches only), and every request
// sampled — reporting mean plus p50/p99 per-op latency (the committed
// reference is BENCH_PR9.json; the PR 9 budget is <3% unsampled
// overhead per path).
//
// The LOAD experiment is the open-loop SLO run (ISSUE 10): three
// purpose-bound tenants drive an in-process server through the
// coordinated-omission-free harness in internal/load, a degradation
// wave lands mid-steady-phase, and the run fails if any SLO gate
// (intended-start p99, post-drain degrade lag, error rate) is violated
// (the committed reference is BENCH_PR10.json). -benchjson applies to
// whichever of METRICS/SHARD/GROUPCOMMIT/TRACE/LOAD runs; use it with
// a single -exp.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"instantdb/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (all, F1, F2, F3, E1, E2, E3, BSTORE, BLOG, BIDX, BTXN, BREC, METRICS, SHARD, GROUPCOMMIT, TRACE, LOAD)")
	benchJSON := flag.String("benchjson", "", "write the METRICS, SHARD, GROUPCOMMIT, TRACE or LOAD result to this JSON file")
	rounds := flag.Int("rounds", 3, "alternating measurement rounds per side for METRICS/GROUPCOMMIT/TRACE")
	n := flag.Int("n", 2000, "workload size (tuples)")
	queries := flag.Int("q", 200, "query count for B-IDX")
	readers := flag.Int("readers", 4, "reader goroutines for B-TXN")
	runFor := flag.Duration("runfor", 500*time.Millisecond, "wall-clock duration per B-TXN configuration")
	quick := flag.Bool("quick", false, "small sizes for a fast smoke run")
	flag.Parse()

	if *quick {
		*n = 400
		*queries = 40
		*runFor = 150 * time.Millisecond
	}

	w := os.Stdout
	run := func(id string, fn func() error) {
		want := strings.ToUpper(*exp)
		if want != "ALL" && want != id {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	run("F1", func() error { return experiments.RunF1(w) })
	run("F2", func() error { return experiments.RunF2(w) })
	run("F3", func() error { return experiments.RunF3(w) })
	run("E1", func() error { _, err := experiments.RunE1(w, *n); return err })
	run("E2", func() error { _, err := experiments.RunE2(w, *n); return err })
	run("E3", func() error { _, err := experiments.RunE3(w, *n); return err })
	run("BSTORE", func() error { _, err := experiments.RunBStore(w, *n); return err })
	run("BLOG", func() error { _, err := experiments.RunBLog(w, *n); return err })
	run("BIDX", func() error { _, err := experiments.RunBIdx(w, *n, *queries); return err })
	run("BTXN", func() error { _, err := experiments.RunBTxn(w, *readers, *runFor); return err })
	run("BREC", func() error { _, err := experiments.RunBRec(w, *n); return err })
	run("METRICS", func() error {
		res, err := experiments.RunMetricsOverhead(w, *n, *rounds)
		if err != nil {
			return err
		}
		if *benchJSON != "" {
			if err := res.WriteJSON(*benchJSON); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", *benchJSON)
		}
		return nil
	})
	run("SHARD", func() error {
		res, err := experiments.RunShard(w, *n/4, *n/40)
		if err != nil {
			return err
		}
		if *benchJSON != "" {
			if err := res.WriteJSON(*benchJSON); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", *benchJSON)
		}
		return nil
	})
	run("TRACE", func() error {
		res, err := experiments.RunTraceOverhead(w, *n, *rounds)
		if err != nil {
			return err
		}
		if *benchJSON != "" {
			if err := res.WriteJSON(*benchJSON); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", *benchJSON)
		}
		return nil
	})
	run("LOAD", func() error {
		res, err := experiments.RunLoad(w, *quick)
		if err != nil {
			return err
		}
		if *benchJSON != "" {
			if err := res.WriteJSON(*benchJSON); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", *benchJSON)
		}
		if !res.Report.SLO.Pass {
			return fmt.Errorf("SLO verdict failed: %v", res.Report.SLO.Violations)
		}
		return nil
	})
	run("GROUPCOMMIT", func() error {
		res, err := experiments.RunGroupCommit(w, *n/2, *rounds)
		if err != nil {
			return err
		}
		if *benchJSON != "" {
			if err := res.WriteJSON(*benchJSON); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", *benchJSON)
		}
		return nil
	})
}
