// Command instantdb is the interactive SQL shell: open (or create) a
// database directory — or run fully in memory — and execute the
// degradation-aware SQL dialect, including CREATE DOMAIN/POLICY,
// DECLARE PURPOSE, SET PURPOSE and FIRE EVENT.
//
// Usage:
//
//	instantdb [-dir path] [-log shred|plain|vacuum] [-tick 1s] [-e 'stmt; stmt']
//
// Without -e the shell reads statements from stdin, one per line
// (terminate with ';'; multi-line statements are accumulated).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"instantdb"
)

func main() {
	dir := flag.String("dir", "", "database directory (empty = in-memory)")
	logMode := flag.String("log", "shred", "log mode for durable databases: shred, plain, vacuum")
	tick := flag.Duration("tick", time.Second, "background degradation tick interval (0 = manual)")
	exec := flag.String("e", "", "execute the given statements and exit")
	flag.Parse()

	cfg := instantdb.Config{Dir: *dir, AutoDegrade: *tick}
	switch *logMode {
	case "shred":
		cfg.LogMode = instantdb.LogShred
	case "plain":
		cfg.LogMode = instantdb.LogPlain
	case "vacuum":
		cfg.LogMode = instantdb.LogVacuum
	default:
		fmt.Fprintf(os.Stderr, "unknown log mode %q\n", *logMode)
		os.Exit(2)
	}
	db, err := instantdb.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()
	conn := db.NewConn()

	if *exec != "" {
		for _, stmt := range splitStatements(*exec) {
			if err := runStatement(conn, stmt); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
		return
	}

	fmt.Println("InstantDB shell — enforcing timely degradation of sensitive data")
	fmt.Println(`type SQL terminated by ';' — try "help;" or "quit;"`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var acc strings.Builder
	prompt := func() {
		if acc.Len() == 0 {
			fmt.Print("instantdb> ")
		} else {
			fmt.Print("       ... ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		acc.WriteString(line)
		acc.WriteString("\n")
		if !strings.Contains(line, ";") {
			prompt()
			continue
		}
		input := acc.String()
		acc.Reset()
		for _, stmt := range splitStatements(input) {
			switch strings.ToLower(stmt) {
			case "quit", "exit":
				return
			case "help":
				printHelp()
				continue
			case "purpose":
				fmt.Println("current purpose:", conn.Purpose())
				continue
			case "tick":
				n, err := db.DegradeNow()
				if err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
				} else {
					fmt.Printf("%d transition(s)\n", n)
				}
				continue
			}
			if err := runStatement(conn, stmt); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		}
		prompt()
	}
}

func splitStatements(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ";") {
		if t := strings.TrimSpace(part); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func runStatement(conn *instantdb.Conn, stmt string) error {
	start := time.Now()
	res, err := conn.Exec(stmt)
	if err != nil {
		return err
	}
	if res.Rows != nil {
		printRows(res.Rows)
		fmt.Printf("%d row(s) in %v\n", res.Rows.Len(), time.Since(start).Round(time.Microsecond))
		return nil
	}
	fmt.Printf("ok, %d row(s) affected in %v\n", res.RowsAffected, time.Since(start).Round(time.Microsecond))
	return nil
}

func printRows(rows *instantdb.Rows) {
	widths := make([]int, len(rows.Columns))
	cells := make([][]string, 0, len(rows.Data)+1)
	header := make([]string, len(rows.Columns))
	for i, c := range rows.Columns {
		header[i] = c
		widths[i] = len(c)
	}
	cells = append(cells, header)
	for _, row := range rows.Data {
		line := make([]string, len(row))
		for i, v := range row {
			line[i] = v.String()
			if len(line[i]) > widths[i] {
				widths[i] = len(line[i])
			}
		}
		cells = append(cells, line)
	}
	for ri, line := range cells {
		for i, cell := range line {
			fmt.Printf("%-*s", widths[i]+2, cell)
		}
		fmt.Println()
		if ri == 0 {
			for _, w := range widths {
				fmt.Print(strings.Repeat("-", w), "  ")
			}
			fmt.Println()
		}
	}
}

func printHelp() {
	fmt.Print(`statements:
  CREATE DOMAIN d TREE LEVELS (a,b,c) PATH ('x','y','z') ...
  CREATE DOMAIN d RANGES (100, 1000, SUPPRESS)
  CREATE DOMAIN d TIME (exact, hour, day, month)
  CREATE POLICY p ON d (HOLD a FOR '15m', HOLD b FOR '1d') THEN DELETE
  CREATE TABLE t (id INT PRIMARY KEY, v TEXT DEGRADABLE DOMAIN d POLICY p)
  CREATE INDEX ix ON t (v) USING GT      -- or BTREE, BITMAP
  DECLARE PURPOSE stats SET ACCURACY LEVEL c FOR t.v
  SET PURPOSE stats
  INSERT / SELECT / UPDATE / DELETE / BEGIN / COMMIT / ROLLBACK
  FIRE EVENT 'name'
shell commands: help; purpose; tick; quit;
`)
}
