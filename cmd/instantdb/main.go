// Command instantdb is the interactive SQL shell: open (or create) a
// database directory — or run fully in memory — and execute the
// degradation-aware SQL dialect, including CREATE DOMAIN/POLICY,
// DECLARE PURPOSE, SET PURPOSE and FIRE EVENT. With -connect the shell
// speaks the same dialect to a remote instantdb-server instead, acting
// as a network REPL over the client package.
//
// Usage:
//
//	instantdb [-dir path] [-log shred|plain|vacuum] [-tick 1s] [-e 'stmt; stmt']
//	instantdb -connect host:7654 [-purpose name] [-e 'stmt; stmt']
//
// Without -e the shell reads statements from stdin, one per line
// (terminate with ';'; multi-line statements are accumulated).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"instantdb"
	"instantdb/client"
)

// stmtResult is the shell's view of one statement outcome, common to
// the embedded and remote paths.
type stmtResult struct {
	cols     []string
	data     [][]instantdb.Value
	hasRows  bool
	affected int
}

// session abstracts where statements run: an embedded DB or a remote
// server.
type session interface {
	exec(stmt string) (*stmtResult, error)
	// command handles a bare shell command (help/quit are handled by the
	// REPL itself); handled=false means "not a shell command".
	command(word string) (handled bool)
	close()
}

func main() {
	dir := flag.String("dir", "", "database directory (empty = in-memory)")
	logMode := flag.String("log", "shred", "log mode for durable databases: shred, plain, vacuum")
	tick := flag.Duration("tick", time.Second, "background degradation tick interval (0 = manual)")
	connect := flag.String("connect", "", "connect to a remote instantdb-server at host:port instead of opening a database")
	purpose := flag.String("purpose", "", "initial session purpose (default: full accuracy)")
	exec := flag.String("e", "", "execute the given statements and exit")
	flag.Parse()

	var sess session
	if *connect != "" {
		rs, err := openRemote(*connect, *purpose)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sess = rs
	} else {
		ls, err := openLocal(*dir, *logMode, *purpose, *tick)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sess = ls
	}
	defer sess.close()

	if *exec != "" {
		for _, stmt := range splitStatements(*exec) {
			if err := runStatement(sess, stmt); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
		return
	}

	if *connect != "" {
		fmt.Printf("InstantDB shell — connected to %s\n", *connect)
	} else {
		fmt.Println("InstantDB shell — enforcing timely degradation of sensitive data")
	}
	fmt.Println(`type SQL terminated by ';' — try "help;" or "quit;"`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var acc strings.Builder
	prompt := func() {
		if acc.Len() == 0 {
			fmt.Print("instantdb> ")
		} else {
			fmt.Print("       ... ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		acc.WriteString(line)
		acc.WriteString("\n")
		if !strings.Contains(line, ";") {
			prompt()
			continue
		}
		input := acc.String()
		acc.Reset()
		for _, stmt := range splitStatements(input) {
			switch strings.ToLower(stmt) {
			case "quit", "exit":
				return
			case "help":
				printHelp()
				continue
			}
			if sess.command(strings.ToLower(stmt)) {
				continue
			}
			if err := runStatement(sess, stmt); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		}
		prompt()
	}
}

// localSession runs statements on an embedded database.
type localSession struct {
	db   *instantdb.DB
	conn *instantdb.Conn
}

func openLocal(dir, logMode, purpose string, tick time.Duration) (*localSession, error) {
	cfg := instantdb.Config{Dir: dir, AutoDegrade: tick}
	var err error
	if cfg.LogMode, err = instantdb.ParseLogMode(logMode); err != nil {
		return nil, err
	}
	db, err := instantdb.Open(cfg)
	if err != nil {
		return nil, err
	}
	conn := db.NewConn()
	if purpose != "" {
		if err := conn.SetPurpose(purpose); err != nil {
			db.Close()
			return nil, err
		}
	}
	return &localSession{db: db, conn: conn}, nil
}

func (s *localSession) exec(stmt string) (*stmtResult, error) {
	res, err := s.conn.Exec(stmt)
	if err != nil {
		return nil, err
	}
	out := &stmtResult{affected: res.RowsAffected}
	if res.Rows != nil {
		out.hasRows = true
		out.cols = res.Rows.Columns
		out.data = res.Rows.Data
	}
	return out, nil
}

func (s *localSession) command(word string) bool {
	switch word {
	case "purpose":
		fmt.Println("current purpose:", s.conn.Purpose())
	case "tick":
		n, err := s.db.DegradeNow()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else {
			fmt.Printf("%d transition(s)\n", n)
		}
	default:
		return false
	}
	return true
}

func (s *localSession) close() { s.db.Close() }

// remoteSession runs statements on an instantdb-server over the client
// package.
type remoteSession struct {
	conn *client.Conn
}

func openRemote(addr, purpose string) (*remoteSession, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var opts []client.Option
	if purpose != "" {
		opts = append(opts, client.WithPurpose(purpose))
	}
	conn, err := client.Dial(ctx, addr, opts...)
	if err != nil {
		return nil, fmt.Errorf("connect %s: %w", addr, err)
	}
	return &remoteSession{conn: conn}, nil
}

func (s *remoteSession) exec(stmt string) (*stmtResult, error) {
	res, err := s.conn.Exec(context.Background(), stmt)
	if err != nil {
		return nil, err
	}
	out := &stmtResult{affected: res.RowsAffected}
	if res.Rows != nil {
		out.hasRows = true
		out.cols = res.Rows.Columns
		out.data = res.Rows.Data
	}
	return out, nil
}

func (s *remoteSession) command(word string) bool {
	switch word {
	case "ping":
		start := time.Now()
		if err := s.conn.Ping(context.Background()); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else {
			fmt.Printf("pong in %v\n", time.Since(start).Round(time.Microsecond))
		}
	case "purpose", "tick":
		fmt.Fprintf(os.Stderr, "%q is a local-shell command; not available over -connect\n", word)
	default:
		return false
	}
	return true
}

func (s *remoteSession) close() { s.conn.Close() }

func splitStatements(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ";") {
		if t := strings.TrimSpace(part); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func runStatement(sess session, stmt string) error {
	start := time.Now()
	res, err := sess.exec(stmt)
	if err != nil {
		return err
	}
	if res.hasRows {
		printRows(res.cols, res.data)
		fmt.Printf("%d row(s) in %v\n", len(res.data), time.Since(start).Round(time.Microsecond))
		return nil
	}
	fmt.Printf("ok, %d row(s) affected in %v\n", res.affected, time.Since(start).Round(time.Microsecond))
	return nil
}

func printRows(columns []string, data [][]instantdb.Value) {
	widths := make([]int, len(columns))
	cells := make([][]string, 0, len(data)+1)
	header := make([]string, len(columns))
	for i, c := range columns {
		header[i] = c
		widths[i] = len(c)
	}
	cells = append(cells, header)
	for _, row := range data {
		line := make([]string, len(row))
		for i, v := range row {
			line[i] = v.String()
			if len(line[i]) > widths[i] {
				widths[i] = len(line[i])
			}
		}
		cells = append(cells, line)
	}
	for ri, line := range cells {
		for i, cell := range line {
			fmt.Printf("%-*s", widths[i]+2, cell)
		}
		fmt.Println()
		if ri == 0 {
			for _, w := range widths {
				fmt.Print(strings.Repeat("-", w), "  ")
			}
			fmt.Println()
		}
	}
}

func printHelp() {
	fmt.Print(`statements:
  CREATE DOMAIN d TREE LEVELS (a,b,c) PATH ('x','y','z') ...
  CREATE DOMAIN d RANGES (100, 1000, SUPPRESS)
  CREATE DOMAIN d TIME (exact, hour, day, month)
  CREATE POLICY p ON d (HOLD a FOR '15m', HOLD b FOR '1d') THEN DELETE
  CREATE TABLE t (id INT PRIMARY KEY, v TEXT DEGRADABLE DOMAIN d POLICY p)
  CREATE INDEX ix ON t (v) USING GT      -- or BTREE, BITMAP
  DECLARE PURPOSE stats SET ACCURACY LEVEL c FOR t.v
  SET PURPOSE stats
  INSERT / SELECT / UPDATE / DELETE / BEGIN / COMMIT / ROLLBACK
  FIRE EVENT 'name'
shell commands: help; purpose; tick; quit;   (remote: help; ping; quit;)
`)
}
