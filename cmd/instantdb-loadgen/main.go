// Command instantdb-loadgen is the open-loop, coordinated-omission-free
// load generator (ISSUE 10): per-tenant arrival schedules fire on
// intended timestamps regardless of in-flight responses, so reported
// latency includes every queueing delay a wedged or overloaded server
// causes. While driving traffic it polls wire Stats for the
// degradation-lag gauge, and on completion it attributes the slowest
// traced operation to spans and summarizes the audit tail.
//
// Usage:
//
//	instantdb-loadgen -targets host:port[,host:port] [flags]
//
// A single tenant is described by flags (-rate, -purpose, -mix …); a
// multi-tenant run loads a JSON workload spec with -spec (see
// DESIGN.md "Load & SLO harness" for the schema). Phases: the rate
// ramps linearly over -ramp, holds for -duration, then the harness
// waits -drain before the final lag sample.
//
//	-mix "insert=6,point=3,scan=0,traced=1" weights the op kinds
//	-arrival fixed|poisson selects the arrival process
//	-text re-sends SQL text each op instead of prepared statements
//	-out LOAD_run.json writes the committed-format JSON report
//
// SLO gates make the run CI-checkable: -slo-p99 bounds the total
// intended-start p99, -slo-lag bounds the post-drain degradation lag,
// -slo-errors bounds the failed-op percentage. Any violation prints
// the verdict and exits with status 2.
//
// -init installs the load schema (location domain over the synthetic
// universe, a hold policy per level from -holds, the person table and
// the stat/cities/regions purposes) on the first target before the
// run — handy against a freshly started server. Real-clock servers
// degrade when the -holds durations expire; in-process harnesses
// (make load-smoke) orchestrate a simulated-clock wave instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"instantdb/client"
	"instantdb/internal/load"
	"instantdb/internal/workload"
)

func main() {
	targets := flag.String("targets", "", "comma-separated wire endpoints (server or router front ends)")
	specPath := flag.String("spec", "", "JSON workload spec (overrides the single-tenant flags)")
	out := flag.String("out", "", "write the JSON report here (LOAD_*.json)")

	arrival := flag.String("arrival", load.ArrivalFixed, "arrival process: fixed or poisson")
	ramp := flag.Duration("ramp", 2*time.Second, "linear rate ramp duration")
	duration := flag.Duration("duration", 10*time.Second, "steady-phase duration")
	drain := flag.Duration("drain", 2*time.Second, "post-run settle time before the final lag sample")
	sessions := flag.Int("sessions", 2, "sessions per target per tenant")
	inflight := flag.Int("max-in-flight", 8192, "per-tenant bound on queued+executing ops")
	text := flag.Bool("text", false, "send SQL text per op instead of prepared statements (comparison mode)")

	rate := flag.Float64("rate", 200, "steady-state ops/sec (single-tenant mode)")
	purpose := flag.String("purpose", "stat", "session purpose (single-tenant mode; empty = server default)")
	coarse := flag.Bool("coarse", false, "enable coarse best-effort projections for the session")
	mix := flag.String("mix", "insert=6,point=3,traced=1", "op mix weights: insert=,point=,scan=,traced=")
	locLevel := flag.Int("loc-level", 3, "location-tree level point queries target (0=address … 3=country)")
	seed := flag.Int64("seed", 1, "workload seed (single-tenant mode)")
	universe := flag.String("universe", "2,2,2,5", "location universe shape: countries,regions,cities,addresses")

	initSchema := flag.Bool("init", false, "install the load schema on the first target before the run")
	holds := flag.String("holds", "15m,1h,1d,1mo", "per-level hold durations for -init (address,city,region,country)")

	sloP99 := flag.Duration("slo-p99", 0, "fail (exit 2) if total intended-start p99 exceeds this")
	sloLag := flag.Duration("slo-lag", 0, "fail (exit 2) if the post-drain degradation lag exceeds this")
	sloErrors := flag.Float64("slo-errors", 0, "fail (exit 2) if failed ops exceed this percentage")
	quiet := flag.Bool("quiet", false, "suppress the live 1s console line")
	flag.Parse()

	if err := run(&options{
		targets: *targets, specPath: *specPath, out: *out,
		arrival: *arrival, ramp: *ramp, duration: *duration, drain: *drain,
		sessions: *sessions, inflight: *inflight, text: *text,
		rate: *rate, purpose: *purpose, coarse: *coarse, mix: *mix,
		locLevel: *locLevel, seed: *seed, universe: *universe,
		initSchema: *initSchema, holds: *holds,
		sloP99: *sloP99, sloLag: *sloLag, sloErrors: *sloErrors, quiet: *quiet,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "instantdb-loadgen:", err)
		if err == errSLO {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

var errSLO = fmt.Errorf("SLO verdict: FAIL")

type options struct {
	targets, specPath, out string
	arrival                string
	ramp, duration, drain  time.Duration
	sessions, inflight     int
	text                   bool
	rate                   float64
	purpose                string
	coarse                 bool
	mix                    string
	locLevel               int
	seed                   int64
	universe               string
	initSchema             bool
	holds                  string
	sloP99, sloLag         time.Duration
	sloErrors              float64
	quiet                  bool
}

func run(o *options) error {
	spec, err := buildSpec(o)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if o.initSchema {
		if err := installSchema(ctx, spec, o.holds); err != nil {
			return fmt.Errorf("-init: %w", err)
		}
	}
	hooks := load.Hooks{
		Logf: func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	}
	if !o.quiet {
		hooks.LiveW = os.Stderr
	}
	rep, err := load.Run(ctx, spec, hooks)
	if err != nil {
		return err
	}
	printSummary(rep)
	if o.out != "" {
		if err := rep.WriteJSON(o.out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.out)
	}
	if !rep.SLO.Pass {
		for _, v := range rep.SLO.Violations {
			fmt.Fprintln(os.Stderr, "SLO violation:", v)
		}
		return errSLO
	}
	return nil
}

// buildSpec assembles the workload spec from -spec or the flags.
func buildSpec(o *options) (*load.Spec, error) {
	if o.specPath != "" {
		b, err := os.ReadFile(o.specPath)
		if err != nil {
			return nil, err
		}
		spec, err := load.ParseSpec(b)
		if err != nil {
			return nil, err
		}
		if o.targets != "" {
			spec.Targets = strings.Split(o.targets, ",")
		}
		applySLOFlags(spec, o)
		return spec, nil
	}
	if o.targets == "" {
		return nil, fmt.Errorf("-targets or -spec is required")
	}
	m, err := parseMix(o.mix)
	if err != nil {
		return nil, err
	}
	uni, err := parseUniverse(o.universe)
	if err != nil {
		return nil, err
	}
	spec := &load.Spec{
		Targets:           strings.Split(o.targets, ","),
		Arrival:           o.arrival,
		Ramp:              load.Dur(o.ramp),
		Steady:            load.Dur(o.duration),
		Drain:             load.Dur(o.drain),
		SessionsPerTarget: o.sessions,
		MaxInFlight:       o.inflight,
		Text:              o.text,
		Universe:          uni,
		Tenants: []load.Tenant{{
			Name:     "main",
			Purpose:  o.purpose,
			Coarse:   o.coarse,
			Rate:     o.rate,
			Mix:      m,
			LocLevel: o.locLevel,
			Seed:     o.seed,
		}},
	}
	applySLOFlags(spec, o)
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	return spec, nil
}

// applySLOFlags lets the gate flags override (or set) the spec's SLO.
func applySLOFlags(spec *load.Spec, o *options) {
	if o.sloP99 > 0 {
		spec.SLO.P99 = load.Dur(o.sloP99)
	}
	if o.sloLag > 0 {
		spec.SLO.FinalLag = load.Dur(o.sloLag)
	}
	if o.sloErrors > 0 {
		spec.SLO.ErrorPct = o.sloErrors
	}
}

func parseMix(s string) (load.OpMix, error) {
	var m load.OpMix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("bad -mix entry %q (want kind=weight)", part)
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad -mix weight %q", part)
		}
		switch kv[0] {
		case "insert":
			m.Insert = w
		case "point":
			m.Point = w
		case "scan":
			m.Scan = w
		case "traced":
			m.Traced = w
		default:
			return m, fmt.Errorf("unknown -mix kind %q (insert, point, scan, traced)", kv[0])
		}
	}
	if m.Insert+m.Point+m.Scan+m.Traced == 0 {
		return m, fmt.Errorf("-mix has no positive weights")
	}
	return m, nil
}

func parseUniverse(s string) (load.Universe, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return load.Universe{}, fmt.Errorf("bad -universe %q (want countries,regions,cities,addresses)", s)
	}
	var dims [4]int
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return load.Universe{}, fmt.Errorf("bad -universe dimension %q", p)
		}
		dims[i] = n
	}
	return load.Universe{Countries: dims[0], Regions: dims[1], Cities: dims[2], Addresses: dims[3]}, nil
}

// installSchema creates the load schema on the first target: the
// location domain enumerating the synthetic universe (one PATH per
// leaf), a delete policy holding each level for the -holds durations,
// the person table, and one purpose per accuracy level.
func installSchema(ctx context.Context, spec *load.Spec, holds string) error {
	hs := strings.Split(holds, ",")
	if len(hs) != 4 {
		return fmt.Errorf("bad -holds %q (want address,city,region,country durations)", holds)
	}
	u := spec.Universe
	uni := workload.NewLocationUniverse(u.Countries, u.Regions, u.Cities, u.Addresses)
	var sb strings.Builder
	sb.WriteString("CREATE DOMAIN location TREE LEVELS (address, city, region, country)")
	for _, leaf := range uni.Addresses {
		// Leaf "c/r/ci/a": each ancestor value is the path prefix.
		parts := strings.Split(leaf, "/")
		if len(parts) != 4 {
			return fmt.Errorf("unexpected leaf shape %q", leaf)
		}
		fmt.Fprintf(&sb, "\n  PATH ('%s', '%s', '%s', '%s')",
			leaf, strings.Join(parts[:3], "/"), strings.Join(parts[:2], "/"), parts[0])
	}
	sb.WriteString(";\n")
	fmt.Fprintf(&sb, `CREATE POLICY locpol ON location (
  HOLD address FOR '%s', HOLD city FOR '%s',
  HOLD region FOR '%s', HOLD country FOR '%s') THEN DELETE;
CREATE TABLE person (
  id INT PRIMARY KEY,
  name TEXT NOT NULL,
  location TEXT DEGRADABLE DOMAIN location POLICY locpol,
  salary INT
);
DECLARE PURPOSE stat SET ACCURACY LEVEL country FOR person.location;
DECLARE PURPOSE cities SET ACCURACY LEVEL city FOR person.location;
DECLARE PURPOSE regions SET ACCURACY LEVEL region FOR person.location;
`, strings.TrimSpace(hs[0]), strings.TrimSpace(hs[1]), strings.TrimSpace(hs[2]), strings.TrimSpace(hs[3]))

	conn, err := client.Dial(ctx, spec.Targets[0])
	if err != nil {
		return err
	}
	defer conn.Close()
	for _, stmt := range strings.Split(sb.String(), ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		if _, err := conn.Exec(ctx, stmt); err != nil {
			return fmt.Errorf("%w (statement: %.80s…)", err, stmt)
		}
	}
	return nil
}

// printSummary renders the run outcome to stdout.
func printSummary(rep *load.Report) {
	fmt.Printf("%-10s %10s %8s %9s %10s %10s %10s %10s\n",
		"tenant", "ops", "errs", "overruns", "p50", "p99", "p999", "max")
	rows := append(append([]load.TenantReport{}, rep.Tenants...), rep.Total)
	for _, t := range rows {
		fmt.Printf("%-10s %10d %8d %9d %9.2fms %9.2fms %9.2fms %9.2fms\n",
			t.Name, t.Ops, t.Errors, t.Overruns,
			1000*t.Intended.P50, 1000*t.Intended.P99, 1000*t.Intended.P999, 1000*t.Intended.Max)
	}
	fmt.Printf("lag: max %.1fs final %.1fs (%d samples); sheds %d; repl lag %.0fB\n",
		rep.Lag.MaxSeconds, rep.Lag.FinalSeconds, rep.Lag.Samples, rep.Lag.Sheds, rep.Lag.MaxReplLagBytes)
	fmt.Printf("availability: %d/%d endpoints live, %d down events, %d reconnects\n",
		rep.Availability.Live, rep.Availability.Endpoints,
		rep.Availability.DownEvents, rep.Availability.Reconnects)
	if st := rep.SlowTrace; st != nil {
		fmt.Printf("slowest traced op %s (%s, %.2fms): dominated by %s\n",
			st.TraceID, st.Root, 1000*st.Seconds, st.Slowest)
		for _, sp := range st.Spans {
			fmt.Printf("  %-24s %9.3fms %5.1f%%\n", sp.Name, 1000*sp.Seconds, sp.Pct)
		}
	}
	fmt.Printf("audit: %d scheduled, %d fired; chain verified=%v",
		rep.Audit.Scheduled, rep.Audit.Fired, rep.Audit.ChainVerified)
	if rep.Audit.Note != "" {
		fmt.Printf(" (%s)", rep.Audit.Note)
	}
	fmt.Println()
	verdict := "PASS"
	if !rep.SLO.Pass {
		verdict = "FAIL"
	}
	fmt.Printf("SLO verdict: %s", verdict)
	for _, g := range rep.SLO.Gates {
		fmt.Printf("  [%s %.4g<=%.4g ok=%v]", g.Name, g.Measured, g.Limit, g.OK)
	}
	fmt.Println()
}
