GO ?= go

.PHONY: build test race vet fuzz bench serve clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fuzz:
	$(GO) test ./internal/query -run '^$$' -fuzz FuzzParse -fuzztime 30s

bench:
	$(GO) test ./... -run '^$$' -bench . -benchmem

serve:
	$(GO) run ./cmd/instantdb-server -dir demo.db -listen :7654

clean:
	rm -rf instantdb instantdb-server degradectl benchrunner bin demo.db
