GO ?= go

.PHONY: build test race vet fmt-check doc-check md-check fuzz bench bench-json bench-shard shard-smoke metrics-smoke serve clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt-check fails (listing the files) when anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# doc-check fails on undocumented exported identifiers in the public
# API surface: the root instantdb package, client, and sqldriver.
doc-check:
	$(GO) run ./internal/tools/doccheck . client sqldriver

# md-check validates markdown cross-links and heading anchors.
md-check:
	$(GO) run ./internal/tools/mdcheck README.md DESIGN.md ROADMAP.md

fuzz:
	$(GO) test ./internal/query -run '^$$' -fuzz FuzzParse -fuzztime 30s

bench:
	$(GO) test ./... -run '^$$' -bench . -benchmem

# bench-json regenerates the committed metrics-overhead reference
# (BENCH_PR6.json): ns/op, allocs, and the instrumentation delta on the
# insert/select hot paths (budget <2% per path).
bench-json:
	$(GO) run ./cmd/benchrunner -exp METRICS -n 5000 -rounds 12 -benchjson BENCH_PR6.json

# bench-shard regenerates the committed sharding reference
# (BENCH_PR7.json): insert / point-select / scan throughput through the
# router, 1-shard vs 3-shard.
bench-shard:
	$(GO) run ./cmd/benchrunner -exp SHARD -benchjson BENCH_PR7.json

# shard-smoke is the sharding E2E under the race detector: router
# routing and scatter-gather, the partitioned-shard deadline guarantee
# with its forensic sweep, and the online split with a concurrent
# writer.
shard-smoke:
	$(GO) test -race -v -run 'TestPartitionedShardEnforcesDeadlines|TestOnlineShardBootstrap|TestRouterSingleKeyRouting|TestRouterScatterGather|TestRouterStaleVersionFailsLoud' ./internal/shard

# metrics-smoke boots a database with a live degradation workload,
# scrapes /metrics and /healthz over HTTP and the Stats opcode over
# TCP, and lints the Prometheus exposition.
metrics-smoke:
	$(GO) run ./internal/tools/metricssmoke

serve:
	$(GO) run ./cmd/instantdb-server -dir demo.db -listen :7654

clean:
	rm -rf instantdb instantdb-server degradectl benchrunner bin demo.db
