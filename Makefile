GO ?= go

.PHONY: build test race vet serve clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

serve:
	$(GO) run ./cmd/instantdb-server -dir demo.db -listen :7654

clean:
	rm -rf instantdb instantdb-server degradectl benchrunner bin demo.db
