GO ?= go

.PHONY: build test race vet fmt-check doc-check md-check fuzz bench serve clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt-check fails (listing the files) when anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# doc-check fails on undocumented exported identifiers in the public
# API surface: the root instantdb package, client, and sqldriver.
doc-check:
	$(GO) run ./internal/tools/doccheck . client sqldriver

# md-check validates markdown cross-links and heading anchors.
md-check:
	$(GO) run ./internal/tools/mdcheck README.md DESIGN.md ROADMAP.md

fuzz:
	$(GO) test ./internal/query -run '^$$' -fuzz FuzzParse -fuzztime 30s

bench:
	$(GO) test ./... -run '^$$' -bench . -benchmem

serve:
	$(GO) run ./cmd/instantdb-server -dir demo.db -listen :7654

clean:
	rm -rf instantdb instantdb-server degradectl benchrunner bin demo.db
