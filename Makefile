GO ?= go

.PHONY: build test race vet fmt-check doc-check md-check fuzz fuzz-wal bench bench-json bench-shard bench-groupcommit bench-trace bench-load shard-smoke metrics-smoke trace-smoke load-smoke groupcommit-smoke serve clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt-check fails (listing the files) when anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# doc-check fails on undocumented exported identifiers in the public
# API surface: the root instantdb package, client, and sqldriver.
doc-check:
	$(GO) run ./internal/tools/doccheck . client sqldriver

# md-check validates markdown cross-links and heading anchors.
md-check:
	$(GO) run ./internal/tools/mdcheck README.md DESIGN.md ROADMAP.md

fuzz:
	$(GO) test ./internal/query -run '^$$' -fuzz FuzzParse -fuzztime 30s

# fuzz-wal hammers the WAL batch-payload decoder (replication and
# recovery both feed it bytes from outside the process).
fuzz-wal:
	$(GO) test ./internal/wal -run '^$$' -fuzz FuzzDecodeRecords -fuzztime 30s

bench:
	$(GO) test ./... -run '^$$' -bench . -benchmem

# bench-json regenerates the committed metrics-overhead reference
# (BENCH_PR6.json): ns/op, allocs, and the instrumentation delta on the
# insert/select hot paths (budget <2% per path).
bench-json:
	$(GO) run ./cmd/benchrunner -exp METRICS -n 5000 -rounds 12 -benchjson BENCH_PR6.json

# bench-shard regenerates the committed sharding reference
# (BENCH_PR7.json): insert / point-select / scan throughput through the
# router, 1-shard vs 3-shard.
bench-shard:
	$(GO) run ./cmd/benchrunner -exp SHARD -benchjson BENCH_PR7.json

# bench-groupcommit regenerates the committed group-commit reference
# (BENCH_PR8.json): durable commits/sec and fsyncs/commit at 1/8/32
# sessions, per-batch fsync vs group commit.
bench-groupcommit:
	$(GO) run ./cmd/benchrunner -exp GROUPCOMMIT -n 4000 -rounds 3 -benchjson BENCH_PR8.json

# groupcommit-smoke runs the group-commit and crash-injection suites
# under the race detector: fsync amortization, durability across
# injected power cuts, and byte-stability of the WAL stream.
groupcommit-smoke:
	$(GO) test -race -v -run 'TestGroupCommit|TestGroupAppend|TestCrash|TestEngineCrash|TestKillDrops|TestNoGroupCommit|TestReplicationGroupCommit|TestIncrementalByteStable' ./internal/wal ./internal/engine ./internal/repl ./internal/backup

# shard-smoke is the sharding E2E under the race detector: router
# routing and scatter-gather, the partitioned-shard deadline guarantee
# with its forensic sweep, and the online split with a concurrent
# writer.
shard-smoke:
	$(GO) test -race -v -run 'TestPartitionedShardEnforcesDeadlines|TestOnlineShardBootstrap|TestRouterSingleKeyRouting|TestRouterScatterGather|TestRouterStaleVersionFailsLoud' ./internal/shard

# metrics-smoke boots a database with a live degradation workload,
# scrapes /metrics and /healthz over HTTP and the Stats opcode over
# TCP, and lints the Prometheus exposition.
metrics-smoke:
	$(GO) run ./internal/tools/metricssmoke

# trace-smoke exercises the tracing and audit surface end to end: a
# forced trace on a durable INSERT must decompose down to the shared
# group-commit fsync, a crossed degradation deadline must land in a
# hash-chain-verifiable audit trail, and /debug/traces + /debug/pprof
# must answer on the metrics listener.
trace-smoke:
	$(GO) run ./internal/tools/tracesmoke

# load-smoke runs the quick open-loop SLO experiment end to end and
# hard-asserts the ISSUE 10 surface: intended-start quantiles per
# tenant, the mid-run degradation wave visible in the lag gauge and
# settled by drain, span attribution for the slowest traced op, the
# audit chain verified over the wave, and a passing SLO verdict.
load-smoke:
	$(GO) run ./internal/tools/loadsmoke

# bench-load regenerates the committed open-loop SLO reference
# (BENCH_PR10.json): the full (non-quick) LOAD run — three tenants,
# Poisson arrivals, degradation wave mid-steady-phase — which fails if
# any SLO gate is violated.
bench-load:
	$(GO) run ./cmd/benchrunner -exp LOAD -benchjson BENCH_PR10.json

# bench-trace regenerates the committed tracing-overhead reference
# (BENCH_PR9.json): insert / point-select ns/op and p50/p99 with
# tracing off, unsampled (sample 0), and fully sampled (sample 1) —
# unsampled overhead budget <3% per path.
bench-trace:
	$(GO) run ./cmd/benchrunner -exp TRACE -n 5000 -rounds 12 -benchjson BENCH_PR9.json

serve:
	$(GO) run ./cmd/instantdb-server -dir demo.db -listen :7654

clean:
	rm -rf instantdb instantdb-server degradectl benchrunner bin demo.db
