package instantdb_test

import (
	"testing"
	"time"

	"instantdb"
)

// TestPublicAPIEndToEnd drives the exported surface the README shows:
// programmatic domains and policies, SQL schema, purposes, degradation
// on a simulated clock, and the coarse-read extension.
func TestPublicAPIEndToEnd(t *testing.T) {
	clock := instantdb.NewSimClock(instantdb.Epoch)
	db, err := instantdb.Open(instantdb.Config{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Programmatic tree + policy via the re-exported builders.
	tree := instantdb.NewTreeBuilder("loc", "addr", "city", "country").
		AddPath("a1", "Amsterdam", "NL").
		AddPath("a2", "Rotterdam", "NL").
		AddPath("p1", "Paris", "FR").
		MustBuild()
	if err := db.RegisterDomain(tree); err != nil {
		t.Fatal(err)
	}
	pol, err := instantdb.NewPolicy("pol", tree).
		Hold(0, 10*time.Minute).
		Hold(1, time.Hour).
		Hold(2, 24*time.Hour).
		ThenDelete().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterPolicy(pol); err != nil {
		t.Fatal(err)
	}
	if err := db.ExecScript(`
CREATE TABLE t (id INT PRIMARY KEY, place TEXT DEGRADABLE DOMAIN loc POLICY pol);
DECLARE PURPOSE c SET ACCURACY LEVEL country FOR t.place;
INSERT INTO t (id, place) VALUES (1, 'a1'), (2, 'p1');
`); err != nil {
		t.Fatal(err)
	}

	conn := db.NewConn()
	if err := conn.SetPurpose("c"); err != nil {
		t.Fatal(err)
	}
	res, err := conn.Exec(`SELECT place, COUNT(*) AS n FROM t GROUP BY place ORDER BY place`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Len() != 2 || res.Rows.Data[0][0].String() != "FR" {
		t.Fatalf("rows=%v", res.Rows.Data)
	}

	// Degrade past the accurate window; strict level-0 reads go empty,
	// coarse reads serve the city level.
	clock.Advance(10 * time.Minute)
	if _, err := db.DegradeNow(); err != nil {
		t.Fatal(err)
	}
	full := db.NewConn()
	res, err = full.Exec(`SELECT place FROM t`)
	if err != nil || res.Rows.Len() != 0 {
		t.Fatalf("strict read after degrade: %d rows, err=%v", res.Rows.Len(), err)
	}
	full.SetCoarse(true)
	res, err = full.Exec(`SELECT place FROM t WHERE id = 1`)
	if err != nil || res.Rows.Len() != 1 || res.Rows.Data[0][0].String() != "Amsterdam" {
		t.Fatalf("coarse read: %v err=%v", res.Rows.Data, err)
	}

	// Value constructors round-trip through results.
	if v := instantdb.Int(42); v.Int() != 42 {
		t.Fatal("Int constructor")
	}
	if v := instantdb.Text("x"); v.Text() != "x" {
		t.Fatal("Text constructor")
	}
	if !instantdb.Null().IsNull() || instantdb.Bool(true).String() != "true" {
		t.Fatal("Null/Bool constructors")
	}
	if instantdb.Float(1.5).Float() != 1.5 {
		t.Fatal("Float constructor")
	}
	if ts := instantdb.Time(instantdb.Epoch); !ts.Time().Equal(instantdb.Epoch) {
		t.Fatal("Time constructor")
	}
	if d, err := instantdb.ParseDuration("1mo"); err != nil || d != 30*24*time.Hour {
		t.Fatal("ParseDuration re-export")
	}

	// Figure fixtures are exported.
	if instantdb.Figure1Locations().Levels() != 4 {
		t.Fatal("Figure1Locations")
	}
	if instantdb.Figure2Salary().Levels() != 4 {
		t.Fatal("Figure2Salary")
	}
	if instantdb.Figure2Policy(instantdb.Figure1Locations()).StateCount() != 4 {
		t.Fatal("Figure2Policy")
	}
	if _, err := instantdb.NewIntRange("r", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := instantdb.NewTimeTrunc("tt"); err == nil {
		t.Fatal("NewTimeTrunc should validate")
	}
}

// TestPublicAPIDurable exercises Open with a directory and log mode
// constants through the public surface.
func TestPublicAPIDurable(t *testing.T) {
	dir := t.TempDir()
	clock := instantdb.NewSimClock(instantdb.Epoch)
	db, err := instantdb.Open(instantdb.Config{Dir: dir, Clock: clock, LogMode: instantdb.LogVacuum})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ExecScript(`
CREATE DOMAIN d RANGES (100, SUPPRESS);
CREATE POLICY p ON d (HOLD exact FOR '1h') THEN SUPPRESS;
CREATE TABLE t (id INT PRIMARY KEY, v INT DEGRADABLE DOMAIN d POLICY p);
INSERT INTO t (id, v) VALUES (1, 2471);
`); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := instantdb.Open(instantdb.Config{Dir: dir, Clock: clock, LogMode: instantdb.LogVacuum})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Exec(`SELECT v FROM t WHERE id = 1`)
	if err != nil || res.Rows.Len() != 1 || res.Rows.Data[0][0].Int() != 2471 {
		t.Fatalf("recovered: %v err=%v", res.Rows, err)
	}
}
