// Command hospital models the paper's "people give personal data to
// hospitals" example with a durable database: admissions carry a
// degradable diagnosis (tree domain) and a degradable admission time
// (time-truncation domain). Billing needs day-level admission times for
// a week; research needs only the diagnosis category, forever. A
// predicate-gated policy keeps the accurate diagnosis while a case is
// open — the paper's §IV "transitions conditioned by predicates".
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"instantdb"
	"instantdb/internal/storage"
)

func main() {
	dir, err := os.MkdirTemp("", "instantdb-hospital-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	clock := instantdb.NewSimClock(instantdb.Epoch)
	db, err := instantdb.Open(instantdb.Config{Dir: dir, Clock: clock, LogMode: instantdb.LogShred})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.ExecScript(`
CREATE DOMAIN diagnosis TREE LEVELS (code, family, category)
  PATH ('J45.901', 'asthma',      'respiratory')
  PATH ('J18.9',   'pneumonia',   'respiratory')
  PATH ('I21.3',   'infarction',  'cardiac')
  PATH ('I48.91',  'fibrillation','cardiac')
  PATH ('S52.5',   'fracture',    'trauma');

CREATE DOMAIN admitted TIME (exact, day, month);

CREATE POLICY diagpol ON diagnosis (
  HOLD code     FOR '7d' IF case_closed,
  HOLD family   FOR '90d'
) THEN SUPPRESS;

CREATE POLICY timepol ON admitted (
  HOLD exact FOR '1d',
  HOLD day   FOR '1w',
  HOLD month FOR '1y'
) THEN SUPPRESS;

CREATE TABLE admissions (
  id        INT PRIMARY KEY,
  patient   TEXT NOT NULL,
  diag      TEXT DEGRADABLE DOMAIN diagnosis POLICY diagpol,
  admitted  TIME DEGRADABLE DOMAIN admitted POLICY timepol
);

DECLARE PURPOSE care     SET ACCURACY LEVEL code FOR admissions.diag,
    exact FOR admissions.admitted;
DECLARE PURPOSE billing  SET ACCURACY LEVEL family FOR admissions.diag,
    day FOR admissions.admitted;
DECLARE PURPOSE research SET ACCURACY LEVEL category FOR admissions.diag,
    month FOR admissions.admitted;
`))

	// Open cases never lose their accurate code; closed ones degrade.
	closed := map[instantdb.TupleID]bool{}
	db.RegisterPredicate("case_closed", func(t storage.Tuple) bool { return closed[t.ID] })

	admit := func(id int, patient, code string) {
		_, err := db.Exec(fmt.Sprintf(
			"INSERT INTO admissions (id, patient, diag, admitted) VALUES (%d, '%s', '%s', TIMESTAMP '%s')",
			id, patient, code, clock.Now().Format(time.RFC3339)))
		must(err)
	}
	admit(1, "alice", "J45.901")
	clock.Advance(2 * time.Hour)
	admit(2, "bob", "I21.3")
	clock.Advance(2 * time.Hour)
	admit(3, "carol", "S52.5")

	query := func(purpose, sql string) {
		conn := db.NewConn()
		must(conn.SetPurpose(purpose))
		res, err := conn.Exec(sql)
		must(err)
		fmt.Printf("  [%s] %s\n", purpose, sql)
		for _, row := range res.Rows.Data {
			fmt.Print("    ")
			for i, v := range row {
				if i > 0 {
					fmt.Print(" | ")
				}
				fmt.Print(v)
			}
			fmt.Println()
		}
	}

	fmt.Println("day 0:")
	query("care", "SELECT patient, diag, admitted FROM admissions ORDER BY patient")

	// A week passes; bob's case closes, alice's stays open. (Staying
	// within day 8 keeps admission times at day accuracy for billing.)
	closed[2] = true
	clock.Advance(7*24*time.Hour + time.Hour)
	n, err := db.DegradeNow()
	must(err)
	fmt.Printf("\nday 7 (%d transitions): bob's closed case degraded, alice's open case held\n", n)
	query("billing", "SELECT patient, diag, admitted FROM admissions ORDER BY patient")

	// The care purpose still sees alice (predicate held her code).
	query("care", "SELECT patient, diag FROM admissions ORDER BY patient")

	// Research counts by category across everything.
	closed[1], closed[3] = true, true
	clock.Advance(24 * time.Hour)
	_, err = db.DegradeNow()
	must(err)
	fmt.Println("\nday 9 (all cases closed):")
	query("research", "SELECT diag, COUNT(*) AS n FROM admissions GROUP BY diag ORDER BY diag")

	// Durability: reopen and verify the schema and states survived.
	must(db.Close())
	db2, err := instantdb.Open(instantdb.Config{Dir: dir, Clock: clock, LogMode: instantdb.LogShred})
	must(err)
	defer db2.Close()
	conn := db2.NewConn()
	must(conn.SetPurpose("research"))
	res, err := conn.Exec("SELECT COUNT(*) AS n FROM admissions")
	must(err)
	fmt.Printf("\nreopened database still holds %d admissions (recovered from WAL)\n",
		res.Rows.Data[0][0].Int())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
