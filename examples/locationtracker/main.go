// Command locationtracker plays the paper's motivating scenario (§I):
// cell phones reporting locations continuously to a service provider.
// The provider runs two services over the same table — a concierge
// service needing fresh accurate positions and a long-term statistics
// service needing only country-level counts — while the Life Cycle
// Policy guarantees that accurate positions survive only minutes and
// everything disappears after a month.
//
// The example also shows the event-trigger extension: a user withdraws
// consent, and every tuple waiting in the accurate state degrades
// immediately.
package main

import (
	"fmt"
	"log"
	"time"

	"instantdb"
	"instantdb/internal/vclock"
	"instantdb/internal/workload"
)

func main() {
	clock := instantdb.NewSimClock(instantdb.Epoch)
	db, err := instantdb.Open(instantdb.Config{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A synthetic location universe: 3 countries × 3 regions × 4 cities
	// × 10 addresses, registered programmatically.
	uni := workload.NewLocationUniverse(3, 3, 4, 10)
	must(db.RegisterDomain(uni.Tree))
	pol := instantdb.NewPolicy("tracker", uni.Tree).
		HoldUntilEvent(0, 15*time.Minute, "consent-withdrawn").
		Hold(1, time.Hour).
		Hold(2, 24*time.Hour).
		Hold(3, 30*24*time.Hour).
		ThenDelete().
		MustBuild()
	must(db.RegisterPolicy(pol))
	must(db.ExecScript(`
CREATE TABLE pings (
  id    INT PRIMARY KEY,
  phone TEXT NOT NULL,
  at    TIME,
  place TEXT DEGRADABLE DOMAIN location POLICY tracker
);
CREATE INDEX ix_place ON pings (place) USING GT;
DECLARE PURPOSE concierge SET ACCURACY LEVEL address FOR pings.place;
DECLARE PURPOSE stats     SET ACCURACY LEVEL country FOR pings.place;
`))

	// Phones ping over 10 simulated minutes.
	gen := workload.NewPersonGen(7, uni, vclock.Epoch)
	for i := 1; i <= 200; i++ {
		p := gen.Next()
		clock.Advance(3 * time.Second)
		_, err := db.Exec(fmt.Sprintf(
			"INSERT INTO pings (id, phone, at, place) VALUES (%d, 'phone-%03d', TIMESTAMP '%s', '%s')",
			i, p.ID%40, clock.Now().Format("2006-01-02 15:04:05"), p.Address))
		must(err)
	}

	concierge := db.NewConn()
	must(concierge.SetPurpose("concierge"))
	stats := db.NewConn()
	must(stats.SetPurpose("stats"))

	// The concierge finds phones at an exact address right now.
	target := uni.Addresses[3]
	res, err := concierge.Exec(fmt.Sprintf(
		"SELECT phone, at FROM pings WHERE place = '%s' LIMIT 5", target))
	must(err)
	fmt.Printf("concierge: %d phone(s) at %s\n", res.Rows.Len(), target)

	// The statistics service counts by country.
	res, err = stats.Exec("SELECT place, COUNT(*) AS n FROM pings GROUP BY place ORDER BY place")
	must(err)
	fmt.Println("stats by country:")
	for _, row := range res.Rows.Data {
		fmt.Printf("  %-12s %4d\n", row[0], row[1].Int())
	}

	// 20 minutes later, accurate addresses are gone — the concierge
	// sees nothing, the stats service is unaffected.
	clock.Advance(20 * time.Minute)
	n, err := db.DegradeNow()
	must(err)
	fmt.Printf("\n+20m: %d transitions enforced\n", n)
	res, err = concierge.Exec(fmt.Sprintf("SELECT phone FROM pings WHERE place = '%s'", target))
	must(err)
	fmt.Printf("concierge now sees %d phone(s) (accurate state expired)\n", res.Rows.Len())
	res, err = stats.Exec("SELECT COUNT(*) AS n FROM pings")
	must(err)
	fmt.Printf("stats still sees %d pings\n", res.Rows.Data[0][0].Int())

	// A user exercises the consent-withdrawal event: fresh pings still
	// in the accurate (event-gated) state degrade immediately, long
	// before their 15-minute deadline.
	for i := 201; i <= 210; i++ {
		p := gen.Next()
		_, err := db.Exec(fmt.Sprintf(
			"INSERT INTO pings (id, phone, at, place) VALUES (%d, 'phone-%03d', TIMESTAMP '%s', '%s')",
			i, p.ID%40, clock.Now().Format("2006-01-02 15:04:05"), p.Address))
		must(err)
	}
	db.MustExec("FIRE EVENT 'consent-withdrawn'")
	n, err = db.DegradeNow()
	must(err)
	fmt.Printf("\nconsent withdrawn: %d immediate transition(s) on fresh pings\n", n)

	// One month later everything has disappeared.
	clock.Advance(32 * 24 * time.Hour)
	_, err = db.DegradeNow()
	must(err)
	res, err = stats.Exec("SELECT COUNT(*) AS n FROM pings")
	must(err)
	fmt.Printf("\n+1 month: stats sees %d pings — the table emptied itself\n", res.Rows.Data[0][0].Int())
	st := db.Degrader().Stats()
	fmt.Printf("degrader: %d transitions, %d deletions, max lag %v\n",
		st.Transitions, st.Deletions, st.MaxLag)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
