// Command sqlapp shows InstantDB through the standard library: it
// starts an in-process server on a loopback socket, then talks to it
// exclusively with database/sql via the instantdb/sqldriver driver —
// placeholder arguments, prepared statements, purpose-scoped pools and
// transactions, exactly as any stock Go application would.
package main

import (
	"database/sql"
	"fmt"
	"log"
	"net"

	"instantdb"
	"instantdb/internal/server"
	_ "instantdb/sqldriver"
)

func main() {
	addr := startServer()

	// One pool at full accuracy for collection...
	db, err := sql.Open("instantdb", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// ...inserting with `?` placeholders: values never pass through SQL
	// text, so the quote in "o'hara" needs no escaping.
	ins, err := db.Prepare(`INSERT INTO visits (id, who, place) VALUES (?, ?, ?)`)
	if err != nil {
		log.Fatal(err)
	}
	visits := []struct {
		who, place string
	}{
		{"o'hara", "Dam 1"},
		{"anciaux", "10 rue de Rivoli"},
		{"bouganim", "Museumplein 6"},
	}
	for i, v := range visits {
		if _, err := ins.Exec(i+1, v.who, v.place); err != nil {
			log.Fatal(err)
		}
	}
	ins.Close()

	// Transactions map to the session transaction; this one changes its
	// mind.
	tx, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tx.Exec(`DELETE FROM visits WHERE who = ?`, "o'hara"); err != nil {
		log.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		log.Fatal(err)
	}

	// A second pool dialed in under the "stats" purpose: every
	// connection sees country-level accuracy only.
	stats, err := sql.Open("instantdb", addr+"?purpose=stats")
	if err != nil {
		log.Fatal(err)
	}
	defer stats.Close()

	rows, err := stats.Query(`SELECT who, place FROM visits ORDER BY who`)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	fmt.Println("visits at the stats purpose's accuracy:")
	for rows.Next() {
		var who, place string
		if err := rows.Scan(&who, &place); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %s\n", who, place)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
}

// startServer opens an ephemeral database, installs the paper's running
// example, and serves it on a loopback listener.
func startServer() string {
	db, err := instantdb.Open(instantdb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.ExecScript(`
CREATE DOMAIN location TREE LEVELS (address, city, region, country)
  PATH ('Dam 1',            'Amsterdam', 'Noord-Holland', 'Netherlands')
  PATH ('Museumplein 6',    'Amsterdam', 'Noord-Holland', 'Netherlands')
  PATH ('10 rue de Rivoli', 'Paris',     'Ile-de-France', 'France');
CREATE POLICY locpol ON location (
  HOLD address FOR '15m',
  HOLD city    FOR '1h',
  HOLD region  FOR '1d',
  HOLD country FOR '1mo'
) THEN DELETE;
CREATE TABLE visits (
  id INT PRIMARY KEY,
  who TEXT NOT NULL,
  place TEXT DEGRADABLE DOMAIN location POLICY locpol
);
DECLARE PURPOSE stats SET ACCURACY LEVEL country FOR visits.place;
`); err != nil {
		log.Fatal(err)
	}
	srv := server.New(db, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	return ln.Addr().String()
}
