// Command quickstart is the five-minute tour of InstantDB's public API:
// define a generalization tree and a life cycle policy, create a table
// with a degradable column, insert accurate data, query it under
// different purposes, and watch the engine degrade it on schedule.
//
// The example runs on a simulated clock so the whole Figure 2 lifetime
// (minutes to a month) plays out instantly.
package main

import (
	"fmt"
	"log"

	"instantdb"
)

func main() {
	// An ephemeral in-memory database on a simulated clock.
	clock := instantdb.NewSimClock(instantdb.Epoch)
	db, err := instantdb.Open(instantdb.Config{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Schema: a generalization tree (Figure 1), a life cycle policy
	// (Figure 2), a table with one degradable column, and a purpose.
	must(db.ExecScript(`
CREATE DOMAIN location TREE LEVELS (address, city, region, country)
  PATH ('Dam 1',            'Amsterdam', 'Noord-Holland', 'Netherlands')
  PATH ('Museumplein 6',    'Amsterdam', 'Noord-Holland', 'Netherlands')
  PATH ('10 rue de Rivoli', 'Paris',     'Ile-de-France', 'France');

CREATE POLICY locpol ON location (
  HOLD address FOR '15m',
  HOLD city    FOR '1h',
  HOLD region  FOR '1d',
  HOLD country FOR '1mo'
) THEN DELETE;

CREATE TABLE visits (
  id    INT PRIMARY KEY,
  who   TEXT NOT NULL,
  place TEXT DEGRADABLE DOMAIN location POLICY locpol
);

DECLARE PURPOSE stats SET ACCURACY LEVEL country FOR visits.place;

INSERT INTO visits (id, who, place) VALUES
  (1, 'alice', 'Dam 1'),
  (2, 'bob',   '10 rue de Rivoli'),
  (3, 'carol', 'Museumplein 6');
`))

	show := func(stage string) {
		fmt.Printf("--- %s\n", stage)
		// Full accuracy (level 0): only computable while accurate.
		res, err := db.Exec(`SELECT who, place FROM visits ORDER BY who`)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  accurate view: %d row(s)\n", res.Rows.Len())
		for _, row := range res.Rows.Data {
			fmt.Printf("    %s @ %s\n", row[0], row[1])
		}
		// The stats purpose sees country-level data for as long as the
		// tuples live.
		conn := db.NewConn()
		must(conn.SetPurpose("stats"))
		res, err = conn.Exec(`SELECT place, COUNT(*) AS n FROM visits GROUP BY place ORDER BY place`)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  stats purpose (country):")
		for _, row := range res.Rows.Data {
			fmt.Printf("    %-12s %d\n", row[0], row[1].Int())
		}
	}

	show("t0: all data accurate")

	step := func(label, dur string) {
		d, err := instantdb.ParseDuration(dur)
		if err != nil {
			log.Fatal(err)
		}
		clock.Advance(d)
		n, err := db.DegradeNow()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n[clock +%s] %d transition(s) enforced\n", dur, n)
		show(label)
	}

	step("after 15m: addresses became cities", "15m")
	step("after 1h: cities became regions", "1h")
	step("after 1d: regions became countries", "1d")
	step("after 1mo: tuples removed", "1mo")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
