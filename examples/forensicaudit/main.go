// Command forensicaudit demonstrates the paper's non-recoverability
// requirement (§III, after Stahlberg et al.): an attacker with raw byte
// access to the page file, the WAL segments and the key store tries to
// recover expired accuracy states. The audit runs before degradation
// (everything visible — as it should be), after degradation (nothing
// recoverable), and after a crash+recovery cycle (still nothing).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"instantdb"
	"instantdb/internal/forensic"
	"instantdb/internal/storage"
)

func main() {
	dir, err := os.MkdirTemp("", "instantdb-audit-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	clock := instantdb.NewSimClock(instantdb.Epoch)
	db, err := instantdb.Open(instantdb.Config{Dir: dir, Clock: clock, LogMode: instantdb.LogShred})
	if err != nil {
		log.Fatal(err)
	}

	must(db.ExecScript(`
CREATE DOMAIN location TREE LEVELS (address, city, country)
  PATH ('Dam 1',            'Amsterdam', 'Netherlands')
  PATH ('10 rue de Rivoli', 'Paris',     'France');
CREATE POLICY p ON location (
  HOLD address FOR '15m',
  HOLD city    FOR '1h'
) THEN SUPPRESS;
CREATE TABLE sightings (
  id    INT PRIMARY KEY,
  who   TEXT NOT NULL,
  place TEXT DEGRADABLE DOMAIN location POLICY p
);
INSERT INTO sightings (id, who, place) VALUES
  (1001, 'suspect-zero', 'Dam 1'),
  (1002, 'suspect-one',  '10 rue de Rivoli');
`))

	// The attacker's needles: the stored forms of the accurate
	// (address-level) values, captured while they are still live.
	tbl, err := db.Catalog().Table("sightings")
	must(err)
	ts := db.StorageManager().Table(tbl)
	var needles []forensic.Needle
	must(ts.Scan(func(t storage.Tuple) bool {
		needles = append(needles, forensic.NeedleForStored(
			fmt.Sprintf("accurate place of tuple %d", t.ID), t.Row[2]))
		return true
	}))

	audit := func(stage string) {
		store, err := forensic.ScanStore(db.StorageManager().Store(), needles)
		must(err)
		wal, err := forensic.ScanDir(filepath.Join(dir, "wal"), needles)
		must(err)
		store.Merge(wal)
		fmt.Printf("%-42s scanned %7d bytes, findings: %d\n",
			stage, store.BytesScanned, len(store.Findings))
		for _, f := range store.Findings {
			fmt.Printf("    %s\n", f)
		}
	}

	fmt.Println("attacker scans page store + WAL for the accurate stored forms:")
	audit("before degradation (data is live)")

	// 15 minutes + one shred epoch later the accurate states expired.
	clock.Advance(15 * time.Minute)
	_, err = db.DegradeNow()
	must(err)
	clock.Advance(2 * time.Hour)
	_, err = db.DegradeNow()
	must(err)
	audit("after degradation + key shredding")

	// Crash (no checkpoint, no graceful close path needed — recovery
	// replays the WAL) and recover; the audit must stay clean.
	must(db.Close())
	db2, err := instantdb.Open(instantdb.Config{Dir: dir, Clock: clock, LogMode: instantdb.LogShred})
	must(err)
	defer db2.Close()
	db = db2
	audit("after crash + recovery")

	// The degraded data itself is still useful.
	res, err := db.Exec("SELECT COUNT(*) AS n FROM sightings")
	must(err)
	fmt.Printf("\nthe table still answers queries: %d sightings (at city accuracy)\n",
		res.Rows.Data[0][0].Int())
	if n := db.KeyStore().LiveKeys(); n >= 0 {
		fmt.Printf("epoch keys still live: %d (address-epoch keys were zero-overwritten)\n", n)
	}
	_ = time.Second
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
